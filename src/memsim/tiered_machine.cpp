#include "memsim/tiered_machine.hpp"

#include "util/logging.hpp"

namespace artmem::memsim {

std::string_view
tier_name(Tier t)
{
    return t == Tier::kFast ? "fast" : "slow";
}

TieredMachine::TieredMachine(const MachineConfig& config) : config_(config)
{
    if (config_.page_size == 0)
        fatal("MachineConfig: page_size must be positive");
    if (config_.address_space % config_.page_size != 0)
        fatal("MachineConfig: address_space must be page aligned");
    if (config_.migration_contention < 0.0 ||
        config_.migration_contention > 1.0) {
        fatal("MachineConfig: migration_contention must be in [0,1]");
    }
    const std::size_t pages = config_.address_space / config_.page_size;
    if (pages == 0)
        fatal("MachineConfig: empty address space");
    capacity_[0] = config_.fast_capacity_pages();
    capacity_[1] = config_.slow_capacity_pages();
    if (pages > capacity_[0] + capacity_[1]) {
        fatal("MachineConfig: footprint of ", pages,
              " pages exceeds machine capacity of ",
              capacity_[0] + capacity_[1], " pages");
    }
    for (int t = 0; t < kTierCount; ++t) {
        if (config_.tiers[t].bandwidth_gbps <= 0.0)
            fatal("MachineConfig: tier bandwidth must be positive");
        latency_[t] = config_.tiers[t].load_latency_ns;
    }
    flags_.assign(pages, 0);
}

void
TieredMachine::allocate(PageId page)
{
    // First-touch, fast tier first (the paper: "ArtMem first places pages
    // in fast memory before overflowing to the slower tier").
    const Tier tier =
        used_[0] < capacity_[0] ? Tier::kFast : Tier::kSlow;
    if (tier == Tier::kSlow && used_[1] >= capacity_[1])
        panic("TieredMachine: both tiers full on allocation");
    ++used_[static_cast<int>(tier)];
    flags_[page] = static_cast<std::uint8_t>(
        kAllocatedBit | (tier == Tier::kSlow ? kTierBit : 0));
}

void
TieredMachine::prefault_range(PageId first, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        const PageId page = first + static_cast<PageId>(i);
        if (!(flags_[page] & kAllocatedBit))
            allocate(page);
    }
}

Tier
TieredMachine::access(PageId page)
{
    std::uint8_t& flags = flags_[page];
    if (!(flags & kAllocatedBit))
        allocate(page);
    const Tier tier =
        (flags & kTierBit) ? Tier::kSlow : Tier::kFast;
    flags |= kAccessedBit;
    const int t = static_cast<int>(tier);
    now_ += latency_[t];
    ++totals_.accesses[t];
    ++window_.accesses[t];
    if (flags & kTrapBit) [[unlikely]] {
        flags &= static_cast<std::uint8_t>(~kTrapBit);
        now_ += config_.hint_fault_cost_ns;
        ++totals_.hint_faults;
        ++window_.hint_faults;
        if (fault_handler_)
            fault_handler_(page, tier);
    }
    return tier;
}

Tier
TieredMachine::tier_of(PageId page) const
{
    if (!is_allocated(page))
        panic("TieredMachine::tier_of on unallocated page ", page);
    return (flags_[page] & kTierBit) ? Tier::kSlow : Tier::kFast;
}

SimTimeNs
TieredMachine::migration_cost(Tier src, Tier dst) const
{
    // Copy cost: read from src at src bandwidth plus write to dst at dst
    // bandwidth, plus fixed PTE/TLB overhead. GB/s == bytes/ns.
    const double bytes = static_cast<double>(config_.page_size);
    const double read_ns =
        bytes / config_.tiers[static_cast<int>(src)].bandwidth_gbps;
    const double write_ns =
        bytes / config_.tiers[static_cast<int>(dst)].bandwidth_gbps;
    return static_cast<SimTimeNs>(read_ns + write_ns) +
           config_.migration_fixed_ns;
}

void
TieredMachine::account_migration(Tier src, Tier dst)
{
    const SimTimeNs busy = migration_cost(src, dst);
    totals_.migration_busy_ns += busy;
    window_.migration_busy_ns += busy;
    now_ += static_cast<SimTimeNs>(
        static_cast<double>(busy) * config_.migration_contention);
    if (dst == Tier::kFast) {
        ++totals_.promoted_pages;
        ++window_.promoted_pages;
    } else {
        ++totals_.demoted_pages;
        ++window_.demoted_pages;
    }
}

bool
TieredMachine::migrate(PageId page, Tier dst)
{
    if (!is_allocated(page))
        return false;
    const Tier src = tier_of(page);
    if (src == dst)
        return false;
    const int d = static_cast<int>(dst);
    if (used_[d] >= capacity_[d])
        return false;
    --used_[static_cast<int>(src)];
    ++used_[d];
    if (dst == Tier::kSlow)
        flags_[page] |= kTierBit;
    else
        flags_[page] &= static_cast<std::uint8_t>(~kTierBit);
    account_migration(src, dst);
    return true;
}

bool
TieredMachine::exchange(PageId a, PageId b)
{
    if (!is_allocated(a) || !is_allocated(b) || a == b)
        return false;
    const Tier ta = tier_of(a);
    const Tier tb = tier_of(b);
    if (ta == tb)
        return false;
    flags_[a] ^= kTierBit;
    flags_[b] ^= kTierBit;
    // An exchange is two copies through a bounce buffer; charge both.
    const SimTimeNs busy = migration_cost(ta, tb) + migration_cost(tb, ta);
    totals_.migration_busy_ns += busy;
    window_.migration_busy_ns += busy;
    now_ += static_cast<SimTimeNs>(
        static_cast<double>(busy) * config_.migration_contention);
    ++totals_.exchanges;
    ++window_.exchanges;
    return true;
}

SimTimeNs
TieredMachine::stream(Tier tier, Bytes length)
{
    const double ns = static_cast<double>(length) /
                      config_.tiers[static_cast<int>(tier)].bandwidth_gbps;
    const auto delta = static_cast<SimTimeNs>(ns);
    now_ += delta;
    return delta;
}

bool
TieredMachine::test_and_clear_accessed(PageId page)
{
    std::uint8_t& flags = flags_[page];
    const bool was = (flags & kAccessedBit) != 0;
    flags &= static_cast<std::uint8_t>(~kAccessedBit);
    return was;
}

TieredMachine::Counters
TieredMachine::take_window()
{
    Counters out = window_;
    window_ = Counters{};
    return out;
}

}  // namespace artmem::memsim
