#include "memsim/fault_injector.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace artmem::memsim {

namespace {

/** One splitmix64 step without mutating a caller-held state. */
std::uint64_t
hash64(std::uint64_t x)
{
    return splitmix64(x);
}

/** Map a 64-bit hash to [0, 1). */
double
to_unit(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void
check_rate(double value, const char* name)
{
    if (value < 0.0 || value > 1.0)
        fatal("FaultConfig: ", name, " must be in [0,1], got ", value);
}

void
check_window(SimTimeNs period, SimTimeNs duration, const char* name)
{
    if (period > 0 && duration > period) {
        fatal("FaultConfig: ", name, " duration ", duration,
              " exceeds its period ", period);
    }
}

}  // namespace

bool
FaultConfig::any_enabled() const
{
    return pinned_fraction > 0.0 || transient_rate > 0.0 ||
           contended_rate > 0.0 || degrade_period_ns > 0 ||
           blackout_period_ns > 0 || sample_drop_rate > 0.0 ||
           pressure_period_ns > 0 || write_storm_period_ns > 0;
}

void
FaultConfig::validate() const
{
    check_rate(pinned_fraction, "pinned_fraction");
    check_rate(transient_rate, "transient_rate");
    check_rate(contended_rate, "contended_rate");
    check_rate(sample_drop_rate, "sample_drop_rate");
    check_rate(pressure_fraction, "pressure_fraction");
    if (degrade_tier < 0 || degrade_tier >= kTierCount)
        fatal("FaultConfig: degrade_tier must be 0 or 1, got ", degrade_tier);
    if (degrade_latency_factor < 1.0)
        fatal("FaultConfig: degrade_latency_factor must be >= 1, got ",
              degrade_latency_factor);
    if (degrade_bandwidth_factor < 1.0)
        fatal("FaultConfig: degrade_bandwidth_factor must be >= 1, got ",
              degrade_bandwidth_factor);
    check_rate(write_storm_rate, "write_storm_rate");
    check_window(degrade_period_ns, degrade_duration_ns, "degrade");
    check_window(blackout_period_ns, blackout_duration_ns, "blackout");
    check_window(pressure_period_ns, pressure_duration_ns, "pressure");
    check_window(write_storm_period_ns, write_storm_duration_ns,
                 "write_storm");
    if (degrade_period_ns > 0 && degrade_duration_ns == 0)
        fatal("FaultConfig: degrade window enabled with zero duration");
    if (blackout_period_ns > 0 && blackout_duration_ns == 0)
        fatal("FaultConfig: blackout window enabled with zero duration");
    if (pressure_period_ns > 0 &&
        (pressure_duration_ns == 0 || pressure_fraction == 0.0)) {
        fatal("FaultConfig: pressure window enabled with zero duration ",
              "or zero pressure_fraction");
    }
    if (write_storm_period_ns > 0 &&
        (write_storm_duration_ns == 0 || write_storm_rate == 0.0)) {
        fatal("FaultConfig: write_storm window enabled with zero duration ",
              "or zero write_storm_rate");
    }
}

FaultConfig
parse_fault_config(const KvConfig& config)
{
    FaultConfig fc;
    // Millisecond-denominated window keys are scaled to simulated ns.
    const auto ms = [&](const std::string& key) {
        return static_cast<SimTimeNs>(config.get_int(key, 0)) * 1000000;
    };
    static const char* kKnown[] = {
        "fault.seed",
        "fault.pinned_fraction",
        "fault.transient_rate",
        "fault.contended_rate",
        "fault.degrade_tier",
        "fault.degrade_latency_factor",
        "fault.degrade_bandwidth_factor",
        "fault.degrade_period_ms",
        "fault.degrade_duration_ms",
        "fault.blackout_period_ms",
        "fault.blackout_duration_ms",
        "fault.sample_drop_rate",
        "fault.pressure_fraction",
        "fault.pressure_period_ms",
        "fault.pressure_duration_ms",
        "fault.write_storm_rate",
        "fault.write_storm_period_ms",
        "fault.write_storm_duration_ms",
    };
    for (const auto& key : config.keys()) {
        const bool known =
            std::find_if(std::begin(kKnown), std::end(kKnown),
                         [&](const char* k) { return key == k; }) !=
            std::end(kKnown);
        if (!known)
            fatal("fault config: unknown key '", key, "'");
    }
    fc.seed = static_cast<std::uint64_t>(config.get_int("fault.seed", 1));
    fc.pinned_fraction = config.get_double("fault.pinned_fraction", 0.0);
    fc.transient_rate = config.get_double("fault.transient_rate", 0.0);
    fc.contended_rate = config.get_double("fault.contended_rate", 0.0);
    fc.degrade_tier =
        static_cast<int>(config.get_int("fault.degrade_tier", 1));
    fc.degrade_latency_factor =
        config.get_double("fault.degrade_latency_factor", 1.0);
    fc.degrade_bandwidth_factor =
        config.get_double("fault.degrade_bandwidth_factor", 1.0);
    fc.degrade_period_ns = ms("fault.degrade_period_ms");
    fc.degrade_duration_ns = ms("fault.degrade_duration_ms");
    fc.blackout_period_ns = ms("fault.blackout_period_ms");
    fc.blackout_duration_ns = ms("fault.blackout_duration_ms");
    fc.sample_drop_rate = config.get_double("fault.sample_drop_rate", 0.0);
    fc.pressure_fraction = config.get_double("fault.pressure_fraction", 0.0);
    fc.pressure_period_ns = ms("fault.pressure_period_ms");
    fc.pressure_duration_ns = ms("fault.pressure_duration_ms");
    fc.write_storm_rate = config.get_double("fault.write_storm_rate", 0.0);
    fc.write_storm_period_ns = ms("fault.write_storm_period_ms");
    fc.write_storm_duration_ns = ms("fault.write_storm_duration_ms");
    fc.validate();
    return fc;
}

std::vector<std::string_view>
fault_scenario_names()
{
    return {"none", "migration", "degrade", "blackout", "pressure"};
}

FaultConfig
make_fault_scenario(std::string_view name, std::uint64_t seed)
{
    FaultConfig fc;
    fc.seed = seed;
    if (name == "none")
        return fc;
    if (name == "migration") {
        // Nomad-style transient migration failures plus a pinned set.
        fc.pinned_fraction = 0.02;
        fc.transient_rate = 0.20;
        fc.contended_rate = 0.10;
        return fc;
    }
    if (name == "degrade") {
        // Optane tail spike / bandwidth hog on the slow tier, 25% duty.
        fc.degrade_tier = 1;
        fc.degrade_latency_factor = 4.0;
        fc.degrade_bandwidth_factor = 4.0;
        fc.degrade_period_ns = 40000000;   // 40 ms
        fc.degrade_duration_ns = 10000000; // 10 ms
        return fc;
    }
    if (name == "blackout") {
        // PEBS outage 30% of the time plus a background drop burst.
        fc.blackout_period_ns = 50000000;   // 50 ms
        fc.blackout_duration_ns = 15000000; // 15 ms
        fc.sample_drop_rate = 0.05;
        return fc;
    }
    if (name == "pressure") {
        // A co-tenant grabs a quarter of the fast tier, 33% duty.
        fc.pressure_fraction = 0.25;
        fc.pressure_period_ns = 60000000;   // 60 ms
        fc.pressure_duration_ns = 20000000; // 20 ms
        return fc;
    }
    if (name == "abort_storm") {
        // Write bursts against in-flight transactions, 40% duty. Only
        // bites under --tx-migration: without an installed tx engine no
        // page is ever in flight, so the storm is never consulted.
        fc.write_storm_rate = 0.75;
        fc.write_storm_period_ns = 20000000;  // 20 ms
        fc.write_storm_duration_ns = 8000000; // 8 ms
        return fc;
    }
    fatal("make_fault_scenario: unknown scenario '", std::string(name), "'");
}

FaultInjector::FaultInjector(const FaultConfig& config,
                             std::size_t fast_capacity_pages)
    : config_(config)
{
    config_.validate();
    pressure_pages_ = static_cast<std::size_t>(
        static_cast<double>(fast_capacity_pages) * config_.pressure_fraction);
    // Seed-derived phase offsets decorrelate the three window schedules
    // from each other and from the engine's tick cadence.
    std::uint64_t state = config_.seed;
    const auto offset = [&](SimTimeNs period) {
        return period > 0
                   ? static_cast<SimTimeNs>(splitmix64(state) %
                                            static_cast<std::uint64_t>(period))
                   : 0;
    };
    degrade_offset_ = offset(config_.degrade_period_ns);
    blackout_offset_ = offset(config_.blackout_period_ns);
    pressure_offset_ = offset(config_.pressure_period_ns);
    // Drawn after the original three so their offsets (and thus every
    // pre-existing scenario's schedule) are unchanged by this class.
    write_storm_offset_ = offset(config_.write_storm_period_ns);
}

double
FaultInjector::draw()
{
    const std::uint64_t x =
        config_.seed + 0x9e3779b97f4a7c15ull * ++draw_counter_;
    return to_unit(hash64(x));
}

bool
FaultInjector::in_window(SimTimeNs now, SimTimeNs period, SimTimeNs duration,
                         SimTimeNs offset) const
{
    if (period == 0)
        return false;
    return (now + offset) % period < duration;
}

bool
FaultInjector::page_pinned(PageId page) const
{
    if (config_.pinned_fraction <= 0.0)
        return false;
    // Pure hash of (seed, page): the pinned set is fixed for a run.
    const std::uint64_t h =
        hash64(config_.seed ^ (0xd1342543de82ef95ull * (page + 1)));
    return to_unit(h) < config_.pinned_fraction;
}

bool
FaultInjector::migration_transient_abort()
{
    const bool abort =
        config_.transient_rate > 0.0 && draw() < config_.transient_rate;
    if (abort)
        ++transient_aborts_;
    return abort;
}

bool
FaultInjector::migration_contended()
{
    const bool contended =
        config_.contended_rate > 0.0 && draw() < config_.contended_rate;
    if (contended)
        ++contended_hits_;
    return contended;
}

bool
FaultInjector::tier_degraded(Tier tier, SimTimeNs now) const
{
    return static_cast<int>(tier) == config_.degrade_tier &&
           in_window(now, config_.degrade_period_ns,
                     config_.degrade_duration_ns, degrade_offset_);
}

SimTimeNs
FaultInjector::effective_latency(Tier tier, SimTimeNs base,
                                 SimTimeNs now) const
{
    if (!tier_degraded(tier, now))
        return base;
    return static_cast<SimTimeNs>(static_cast<double>(base) *
                                  config_.degrade_latency_factor);
}

double
FaultInjector::bandwidth_penalty(Tier tier, SimTimeNs now) const
{
    return tier_degraded(tier, now) ? config_.degrade_bandwidth_factor : 1.0;
}

double
FaultInjector::tx_write_storm_rate(SimTimeNs now) const
{
    if (config_.write_storm_period_ns == 0)
        return 0.0;
    return in_window(now, config_.write_storm_period_ns,
                     config_.write_storm_duration_ns, write_storm_offset_)
               ? config_.write_storm_rate
               : 0.0;
}

bool
FaultInjector::sampling_blackout(SimTimeNs now) const
{
    return in_window(now, config_.blackout_period_ns,
                     config_.blackout_duration_ns, blackout_offset_);
}

bool
FaultInjector::sample_suppressed(SimTimeNs now)
{
    if (sampling_blackout(now)) {
        if (trace_pebs_ != nullptr && !in_blackout_) [[unlikely]] {
            in_blackout_ = true;
            trace_pebs_->instant(telemetry::Category::kPebs,
                                 "blackout_begin", now);
        }
        ++suppressed_samples_;
        return true;
    }
    if (trace_pebs_ != nullptr && in_blackout_) [[unlikely]] {
        in_blackout_ = false;
        trace_pebs_->instant(telemetry::Category::kPebs, "blackout_end",
                             now);
    }
    const bool dropped = config_.sample_drop_rate > 0.0 &&
                         draw() < config_.sample_drop_rate;
    if (dropped) {
        ++suppressed_samples_;
        if (metrics_ != nullptr)
            metrics_->add(drop_counter_);
    }
    return dropped;
}

void
FaultInjector::set_telemetry(telemetry::Telemetry* telemetry)
{
    trace_pebs_ = nullptr;
    metrics_ = nullptr;
    drop_counter_ = 0;
    in_blackout_ = false;
    if (telemetry == nullptr)
        return;
    trace_pebs_ = telemetry->trace(telemetry::Category::kPebs);
    metrics_ = telemetry->metrics();
    if (metrics_ != nullptr)
        drop_counter_ = metrics_->counter("pebs.drop_suppressed");
}

std::size_t
FaultInjector::reserved_fast_pages(SimTimeNs now) const
{
    return in_window(now, config_.pressure_period_ns,
                     config_.pressure_duration_ns, pressure_offset_)
               ? pressure_pages_
               : 0;
}

}  // namespace artmem::memsim
