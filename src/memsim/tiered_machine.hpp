/**
 * @file
 * The two-tier memory machine model.
 *
 * TieredMachine is the substrate every tiering policy in this repo runs
 * on. It substitutes for the paper's DRAM + Optane testbed: it tracks
 * page residency, charges each access the residing tier's load latency,
 * charges migrations a bandwidth-derived cost, and exposes the three
 * access-monitoring facilities real systems use (ArtMem Section 2.1):
 *
 *  - per-page accessed bits that can be scanned and cleared (page-table
 *    scanning, used by Nimble / Multi-clock / kernel LRU emulations),
 *  - software traps on selected pages that deliver a fault on the next
 *    access (NUMA hint faults, used by AutoNUMA / AutoTiering / TPP),
 *  - an externally driven sampling hook (PEBS, used by MEMTIS / ArtMem;
 *    see PebsSampler).
 *
 * Simulated time advances only through this class, so "execution time"
 * of a workload is machine.now() at the end of the run.
 */
#ifndef ARTMEM_MEMSIM_TIERED_MACHINE_HPP
#define ARTMEM_MEMSIM_TIERED_MACHINE_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "memsim/fault_injector.hpp"
#include "memsim/pebs.hpp"
#include "memsim/tenant_ledger.hpp"
#include "memsim/tier.hpp"
#include "memsim/tx_migration.hpp"
#include "util/types.hpp"

namespace artmem::memsim {

/**
 * Why a migration did not complete. kNotAllocated/kSameTier are caller
 * errors (the request was meaningless), kNoFreeSlot is a capacity
 * condition, kPagePinned/kCopyAborted/kDstContended are injected
 * faults (a permanently pinned page, a transient mid-copy abort, and
 * transient destination contention including co-tenant capacity
 * pressure), and the kTx* values belong to the transactional engine:
 * kTxOpened is not a failure at all (a transaction is now in flight
 * and will commit or abort later), kTxInFlight/kTxBusy are refusals
 * (the page already has an open transaction / the in-flight table is
 * full), and kTxAbort reports — via the resolution callback and
 * failure-backoff paths, never from migrate() itself — that a
 * concurrent write aborted an in-flight transaction. The two kDenied
 * values belong to the tenancy layer (memsim/tenant_ledger.hpp):
 * kQuotaDenied means the tenant's fast-tier quota is exhausted and
 * kAdmissionDenied means the admission controller refused the grant —
 * both are policy refusals, not injected faults, and consume no fault
 * draws.
 */
enum class MigrateStatus : std::uint8_t {
    kOk = 0,
    kNotAllocated,
    kSameTier,
    kNoFreeSlot,
    kPagePinned,
    kCopyAborted,
    kDstContended,
    kTxOpened,
    kTxInFlight,
    kTxBusy,
    kTxAbort,
    kQuotaDenied,
    kAdmissionDenied,
};

/** Printable status name. */
std::string_view migrate_status_name(MigrateStatus status);

/** Typed outcome of TieredMachine::migrate() / exchange(). */
struct MigrationResult {
    MigrateStatus status = MigrateStatus::kOk;

    /** The page(s) moved. */
    bool ok() const { return status == MigrateStatus::kOk; }

    /**
     * A transaction opened: the page is being copied in the background
     * and will commit or abort at a later poll. Not ok() — the move has
     * not happened yet — but not a failure either.
     */
    bool pending() const { return status == MigrateStatus::kTxOpened; }

    /**
     * The transactional engine refused the request outright: the page
     * already has an open transaction, or the in-flight table is full.
     * Retrying after the next decision boundary can succeed.
     */
    bool busy() const
    {
        return status == MigrateStatus::kTxInFlight ||
               status == MigrateStatus::kTxBusy;
    }

    /**
     * The failure is transient: retrying later (backoff) can succeed.
     * kNoFreeSlot counts as transient — capacity can be reclaimed —
     * and so do the transactional refusals, write aborts, and tenancy
     * denials (quotas free up as pages demote; admission budgets refill
     * at the next decision interval).
     */
    bool transient() const
    {
        return status == MigrateStatus::kNoFreeSlot ||
               status == MigrateStatus::kCopyAborted ||
               status == MigrateStatus::kDstContended ||
               status == MigrateStatus::kTxInFlight ||
               status == MigrateStatus::kTxBusy ||
               status == MigrateStatus::kTxAbort ||
               status == MigrateStatus::kQuotaDenied ||
               status == MigrateStatus::kAdmissionDenied;
    }

    /**
     * The tenancy layer refused the request (quota exhausted or
     * admission denied): no state changed and no fault draw was
     * consumed. Retrying next interval can succeed, but policies
     * should back off harder than for device-level transients — the
     * denial reflects standing resource policy, not bad luck.
     */
    bool denied() const
    {
        return status == MigrateStatus::kQuotaDenied ||
               status == MigrateStatus::kAdmissionDenied;
    }

    /** The page is permanently pinned; retries are futile. */
    bool pinned() const { return status == MigrateStatus::kPagePinned; }

    /** An injected fault (not a caller error or plain capacity miss). */
    bool faulted() const
    {
        return status == MigrateStatus::kPagePinned ||
               status == MigrateStatus::kCopyAborted ||
               status == MigrateStatus::kDstContended ||
               status == MigrateStatus::kTxAbort;
    }

    /** Contextual conversion preserves the old `if (migrate(...))` idiom. */
    explicit operator bool() const { return ok(); }
};

/** Static configuration of a TieredMachine. */
struct MachineConfig {
    /** Migration granule; the paper uses 2 MiB huge pages. */
    Bytes page_size = 2ull << 20;
    /** Device specs, indexed by Tier. Defaults are the paper's Table 2. */
    TierSpec tiers[kTierCount] = {
        TierSpec{92, 81.0, 64ull << 30},
        TierSpec{323, 26.0, 512ull << 30},
    };
    /** Size of the simulated virtual address space (the app footprint). */
    Bytes address_space = 32ull << 30;
    /** Cost of taking one NUMA-hint fault on the critical path (ns). */
    SimTimeNs hint_fault_cost_ns = 500;
    /**
     * Fraction of raw migration device time charged to application time.
     * Migrations run on a background thread but contend for memory
     * bandwidth; 1.0 = fully synchronous, 0.0 = free migrations.
     */
    double migration_contention = 0.25;
    /** Fixed per-page migration overhead: PTE updates, TLB shootdown (ns). */
    SimTimeNs migration_fixed_ns = 2000;

    /** Total page slots in the fast tier. */
    std::size_t fast_capacity_pages() const
    {
        return static_cast<std::size_t>(tiers[0].capacity / page_size);
    }
    /** Total page slots in the slow tier. */
    std::size_t slow_capacity_pages() const
    {
        return static_cast<std::size_t>(tiers[1].capacity / page_size);
    }
};

/**
 * Two-tier machine: page residency, access timing, migration engine,
 * accessed bits, and hint-fault traps.
 */
class TieredMachine
{
  public:
    /** Called when a trapped page is accessed: (page, tier it resides in). */
    using FaultHandler = std::function<void(PageId, Tier)>;

    /** Build a machine; fatal() on inconsistent configuration. */
    explicit TieredMachine(const MachineConfig& config);

    /**
     * Perform one memory access to @p page.
     *
     * First touch allocates the page (fast tier first, overflowing to the
     * slow tier, as in the paper's evaluation setup). Advances simulated
     * time by the tier's load latency, sets the accessed bit, and fires
     * the fault handler if the page was trapped.
     *
     * @return the tier the access was served from.
     */
    Tier access(PageId page);

    /**
     * Perform @p n accesses through one fused dispatch loop, feeding
     * each one to @p sampler (the engine's per-access sequence).
     *
     * Semantically exactly n calls to access() + PebsSampler::observe():
     * the clock and the per-tier access counters are accumulated in
     * locals and flushed before any trap handler runs (the handler may
     * re-enter the machine), so every observable intermediate state —
     * including the timestamps fault handlers and samplers see — is
     * bit-identical to the scalar loop. tests/test_diff_model.cpp
     * drives both paths in lockstep to enforce this.
     */
    void access_batch(const PageId* pages, std::size_t n,
                      PebsSampler& sampler);

    /**
     * access_batch() with the engine's fault-aware sampling sequence:
     * per access, latency is the injector's effective latency, and the
     * sample is dropped (counted in @p pebs_suppressed) when the
     * injector suppresses it — same call order as the scalar loop,
     * so the injector's draw stream is unchanged. Requires an
     * installed fault injector.
     */
    void access_batch_faulted(const PageId* pages, std::size_t n,
                              PebsSampler& sampler,
                              std::uint64_t& pebs_suppressed);

    /**
     * Allocate pages [first, first+count) in address order without
     * charging access time (a program initializing its heap at startup:
     * fast tier fills first, then overflows to the slow tier).
     */
    void prefault_range(PageId first, std::size_t count);

    /** Current simulated time (ns). */
    SimTimeNs now() const { return now_; }

    /** Advance simulated time without memory traffic (compute phases). */
    void advance(SimTimeNs delta) { now_ += delta; }

    /**
     * Charge policy bookkeeping time (page-table scans, LRU passes,
     * Q-table math). Advances the clock like advance() but is also
     * accounted separately so per-policy CPU overhead can be compared
     * (Section 6.3.3: MEMTIS's migration threads cost ~10x ArtMem's).
     */
    void
    charge_overhead(SimTimeNs delta)
    {
        now_ += delta;
        totals_.overhead_ns += delta;
        window_.overhead_ns += delta;
    }

    /** Number of pages in the virtual address space. */
    std::size_t page_count() const { return flags_.size(); }

    /** Page size in bytes. */
    Bytes page_size() const { return config_.page_size; }

    /** Immutable configuration. */
    const MachineConfig& config() const { return config_; }

    /** Page slots the tier can hold. */
    std::size_t capacity_pages(Tier t) const
    {
        return capacity_[static_cast<int>(t)];
    }

    /** Pages currently resident in the tier. */
    std::size_t used_pages(Tier t) const
    {
        return used_[static_cast<int>(t)];
    }

    /**
     * Free page slots in the tier, net of any slots the injected
     * co-tenant is holding (capacity-pressure fault class). In
     * transactional mode, dual-resident secondary copies count as free:
     * their slots are reclaimed on demand when a migration or
     * allocation needs them.
     */
    std::size_t free_pages(Tier t) const
    {
        std::size_t taken = used_pages(t) + reserved_pages(t);
        if (tx_ != nullptr) {
            const std::size_t r = tx_->reclaimable[static_cast<int>(t)];
            taken -= r < taken ? r : taken;
        }
        const std::size_t cap = capacity_pages(t);
        return cap > taken ? cap - taken : 0;
    }

    /** True once the page has been touched. */
    bool is_allocated(PageId page) const
    {
        return (flags_[page] & kAllocatedBit) != 0;
    }

    /** Residency of an allocated page; panic() on unallocated pages. */
    Tier tier_of(PageId page) const;

    /**
     * Residency without the allocation check, for hot loops whose pages
     * are allocated by construction (e.g. pages that arrived in a PEBS
     * sample were necessarily accessed). Unallocated pages read as
     * kFast; callers that cannot prove allocation must use tier_of().
     */
    Tier tier_of_unchecked(PageId page) const
    {
        return (flags_[page] & kTierBit) != 0 ? Tier::kSlow : Tier::kFast;
    }

    /**
     * Move an allocated page to @p dst, charging migration cost on
     * success (and a partial abort cost on injected mid-copy aborts).
     * In transactional mode (install_tx) a successful request instead
     * opens an in-flight transaction (kTxOpened) that commits at a
     * later poll_tx(), or adopts an existing clean dual copy for free
     * (kOk with zero cost).
     * @return typed result; not-ok (no state change) if the page is
     *         unallocated, already in @p dst, @p dst has no free slot,
     *         or an injected fault fired. Discarding the result hides
     *         migration failures from the caller — hence nodiscard.
     */
    [[nodiscard]] MigrationResult migrate(PageId page, Tier dst);

    /**
     * Swap the tiers of two pages resident in different tiers (the
     * exchange migration AutoTiering uses when the fast tier is full).
     * In transactional mode a successful request opens one in-flight
     * transaction covering the pair (kTxOpened).
     * @return typed result; not-ok if the precondition does not hold or
     *         an injected fault fired.
     */
    [[nodiscard]] MigrationResult exchange(PageId a, PageId b);

    /**
     * Install the fault model for this run (engine: EngineConfig::faults).
     * A config with no enabled class leaves the machine fault-free, with
     * zero overhead and bit-identical behaviour to a build without the
     * fault layer.
     */
    void install_faults(const FaultConfig& config);

    /** True once an enabled fault model is installed. */
    bool faults_enabled() const { return faults_ != nullptr; }

    /** The installed fault model, or nullptr when fault-free. */
    FaultInjector* fault_injector() { return faults_.get(); }

    /** Read-only fault model access. */
    const FaultInjector* fault_injector() const { return faults_.get(); }

    /**
     * Fast-tier slots currently held by the injected co-tenant. One
     * source of truth: the reservation is always the fault injector's
     * pure window function, read through the tenant ledger when one is
     * installed (the ledger owns every "who holds fast slots" query)
     * and straight from the injector otherwise.
     */
    std::size_t reserved_pages(Tier t) const
    {
        if (t != Tier::kFast)
            return 0;
        if (tenants_ != nullptr) [[unlikely]]
            return tenants_->reserved_fast(now_);
        return faults_ != nullptr ? faults_->reserved_fast_pages(now_) : 0;
    }

    // --- multi-tenant serving (DESIGN.md §13) ---------------------------

    /**
     * Install (or with nullptr remove) the per-tenant ledger. The
     * ledger's page map must cover this machine's address space
     * exactly. Uninstalled — the default — is a strict no-op: no
     * per-access attribution, no quota or admission checks, and
     * bit-identical behaviour to a build without the tenancy layer.
     */
    void install_tenants(std::unique_ptr<TenantLedger> ledger);

    /** True once a tenant ledger is installed. */
    bool tenants_enabled() const { return tenants_ != nullptr; }

    /** The installed ledger, or nullptr on a single-tenant machine. */
    TenantLedger* tenants() { return tenants_.get(); }

    /** Read-only ledger access. */
    const TenantLedger* tenants() const { return tenants_.get(); }

    // --- transactional migration engine ---------------------------------

    /** Called when an in-flight transaction resolves:
     *  (page, src, dst, committed). Delivered from poll_tx(). */
    using TxResolveHandler = std::function<void(PageId, Tier, Tier, bool)>;

    /**
     * Install (or with enabled=false remove) the transactional
     * migration engine. Off — the default — is a strict no-op: no
     * draws, no extra flag bits, bit-identical to the atomic engine.
     */
    void install_tx(const TxConfig& config);

    /** True once transactional mode is installed. */
    bool tx_enabled() const { return tx_ != nullptr; }

    /** Engine configuration in force, or nullptr when off. */
    const TxConfig* tx_config() const
    {
        return tx_ != nullptr ? &tx_->config : nullptr;
    }

    /** Install the resolution callback (one at a time). */
    void set_tx_handler(TxResolveHandler handler)
    {
        tx_handler_ = std::move(handler);
    }

    /**
     * Resolve every transaction whose in-flight window has closed
     * (commit_time <= now()), in deterministic (commit_time, open
     * order) order, then deliver all queued resolutions — aborts in
     * occurrence order followed by these commits — to the handler.
     * The engine calls this at every decision boundary.
     * @return transactions committed by this poll.
     */
    std::size_t poll_tx();

    /** Open transactions right now. */
    std::size_t tx_inflight_count() const
    {
        return tx_ != nullptr ? tx_->inflight.size() : 0;
    }

    /** Dual-resident secondary copies currently charged to the tier. */
    std::size_t tx_reclaimable_pages(Tier t) const
    {
        return tx_ != nullptr ? tx_->reclaimable[static_cast<int>(t)] : 0;
    }

    /** Write-classification draws consumed so far. */
    std::uint64_t tx_write_draws() const
    {
        return tx_ != nullptr ? tx_->write_draws : 0;
    }

    /** Draws that classified an access as a write. */
    std::uint64_t tx_write_hits() const
    {
        return tx_ != nullptr ? tx_->write_hits : 0;
    }

    /** True while the page has an open transaction. */
    bool tx_page_inflight(PageId page) const
    {
        return (flags_[page] & kInFlightBit) != 0;
    }

    /** True while the page is non-exclusively resident in both tiers. */
    bool tx_page_dual(PageId page) const
    {
        return (flags_[page] & kDualBit) != 0;
    }

    /**
     * True while the page's open transaction holds a shadow copy that
     * charges destination capacity (migrate transactions; exchange
     * transactions copy through a bounce buffer and charge nothing).
     */
    bool tx_page_shadow(PageId page) const
    {
        return (flags_[page] & (kInFlightBit | kTxExchangeBit)) ==
               kInFlightBit;
    }

    /**
     * Attach (or with nullptr detach) the run's telemetry bundle:
     * migrations and exchanges become kMigration trace events and a
     * cost histogram, and the injector (if installed) gains its kPebs
     * instrumentation. Observational only — no time charges, counters,
     * or fault draws change, so instrumented runs stay bit-identical.
     */
    void set_telemetry(telemetry::Telemetry* telemetry);

    /**
     * Bulk sequential transfer of @p length bytes from the tier, charged
     * at the tier's bandwidth (used by the MLC-style Table 2 microbench;
     * regular workload accesses go through access()).
     * @return the time charged.
     */
    SimTimeNs stream(Tier tier, Bytes length);

    /** Read and clear the page's accessed bit. */
    bool test_and_clear_accessed(PageId page);

    /** Read the accessed bit without clearing. */
    bool accessed(PageId page) const
    {
        return (flags_[page] & kAccessedBit) != 0;
    }

    /** Arm a hint-fault trap: next access faults (and clears the trap). */
    void set_trap(PageId page) { flags_[page] |= kTrapBit; }

    /** True if a trap is armed on the page. */
    bool has_trap(PageId page) const
    {
        return (flags_[page] & kTrapBit) != 0;
    }

    /** Install the hint-fault callback (one at a time). */
    void set_fault_handler(FaultHandler handler)
    {
        fault_handler_ = std::move(handler);
    }

    /** Monotonic counters. */
    struct Counters {
        std::uint64_t accesses[kTierCount] = {0, 0};
        std::uint64_t hint_faults = 0;
        std::uint64_t promoted_pages = 0;
        std::uint64_t demoted_pages = 0;
        std::uint64_t exchanges = 0;
        /** Raw device time spent copying pages, before contention scaling. */
        SimTimeNs migration_busy_ns = 0;
        /** Policy bookkeeping time charged via charge_overhead(). */
        SimTimeNs overhead_ns = 0;
        /** Migrations refused: destination had no free slot. */
        std::uint64_t failed_no_slot = 0;
        /** Migrations refused: page permanently pinned (injected). */
        std::uint64_t failed_pinned = 0;
        /** Migrations aborted mid-copy (injected transient). */
        std::uint64_t failed_transient = 0;
        /** Migrations refused: destination contended (injected). */
        std::uint64_t failed_contended = 0;
        /** Device time wasted on aborted copies (injected faults only). */
        SimTimeNs aborted_migration_ns = 0;
        /** Transactions opened (migrates and exchanges). */
        std::uint64_t tx_opened = 0;
        /** Transactions committed at a poll. */
        std::uint64_t tx_committed = 0;
        /** Transactions aborted by a concurrent write. */
        std::uint64_t tx_aborted = 0;
        /** Opens that retried a previously aborted page. */
        std::uint64_t tx_retries = 0;
        /** Free migrations: a clean dual copy was adopted in place. */
        std::uint64_t tx_free_flips = 0;
        /** Dual-resident copies invalidated by a write. */
        std::uint64_t tx_dual_drops = 0;
        /** Dual-resident copies reclaimed for capacity. */
        std::uint64_t tx_dual_reclaims = 0;
        /** Requests refused: page already in flight / table full. */
        std::uint64_t failed_tx_busy = 0;
        /** Migrations refused: tenant fast-tier quota exhausted. */
        std::uint64_t failed_quota = 0;
        /** Migrations refused: admission controller denied the grant. */
        std::uint64_t failed_admission = 0;

        /** Total accesses across tiers. */
        std::uint64_t total_accesses() const
        {
            return accesses[0] + accesses[1];
        }
        /** Fraction of accesses served by the fast tier (1.0 if idle). */
        double fast_ratio() const
        {
            const std::uint64_t total = total_accesses();
            return total == 0
                ? 1.0
                : static_cast<double>(accesses[0]) / static_cast<double>(total);
        }
        /** Pages moved in either direction. */
        std::uint64_t migrated_pages() const
        {
            return promoted_pages + demoted_pages + 2 * exchanges;
        }
        /** Migration attempts that did not move a page. */
        std::uint64_t migration_failures() const
        {
            return failed_no_slot + failed_pinned + failed_transient +
                   failed_contended + tx_aborted + failed_tx_busy +
                   failed_quota + failed_admission;
        }
    };

    /** Counters since construction. */
    const Counters& totals() const { return totals_; }

    /** Counters since the previous take_window() call (then reset). */
    Counters take_window();

  private:
    /** Test-only back door: seeds deliberate state corruption so the
     *  invariant checker's detection paths can be exercised
     *  (tests/test_verify.cpp). Never defined in the library. */
    friend struct MachineTestPeer;

    /** The sharded access engine (memsim/sharded_access.hpp) is the
     *  machine's parallel front end: its ownership scan writes owned
     *  pages' flag bytes, its serial epoch walk replays the exact
     *  access_step() sequence, and its parallel per-lane merge charges
     *  each lane's latency into a private accumulator before folding
     *  the lanes into these counters in fixed shard order at batch and
     *  decision boundaries — so it needs the same view of the flag
     *  word, clock, and counters the batch loop has. Either path is
     *  byte-identical to the unsharded loop. */
    friend class ShardedAccessEngine;

    static constexpr std::uint8_t kTierBit = 0x1;       // 0 fast, 1 slow
    static constexpr std::uint8_t kAllocatedBit = 0x2;
    static constexpr std::uint8_t kAccessedBit = 0x4;
    static constexpr std::uint8_t kTrapBit = 0x8;
    // Transactional-engine bits; never set while tx mode is off.
    static constexpr std::uint8_t kInFlightBit = 0x10;   // open transaction
    static constexpr std::uint8_t kDualBit = 0x20;       // dual-resident
    static constexpr std::uint8_t kTxAbortedBit = 0x40;  // last tx aborted
    static constexpr std::uint8_t kTxExchangeBit = 0x80; // tx is an exchange
    /** Access-path filter: only these bits need per-access tx work. */
    static constexpr std::uint8_t kTxAccessMask = kInFlightBit | kDualBit;

    void allocate(PageId page);

    /**
     * Clock and per-tier access counters shadowed in locals across a
     * batch (DESIGN.md §9). Flushed back to the machine before any
     * re-entrant code (trap handlers) runs and at batch end, so every
     * observable intermediate state matches per-access access() calls.
     */
    struct BatchCtx {
        SimTimeNs now;
        std::uint64_t acc[kTierCount];
        /** Set when a trap handler was actually invoked; the sharded
         *  epoch walk switches to the legacy per-access tail because
         *  the handler may have migrated pages mid-batch. */
        bool handler_ran;
    };

    /**
     * One access of the engine's scalar sequence: allocate on first
     * touch, charge latency, set the accessed bit, run the tx hook,
     * fire a trap, then sample. This is the single source of truth for
     * per-access semantics — batch_loop() iterates it and the sharded
     * epoch walk (memsim/sharded_access.cpp) replays it for special
     * accesses and legacy tails — so the scalar oracle, the batched
     * path, and the sharded path cannot drift apart.
     *
     * @p flags and @p lat are the caller-hoisted flags base pointer and
     * tier-latency pair (hot-path shape; see batch_loop).
     */
    template <bool kFaulted>
    void
    access_step(PageId page, std::uint8_t* flags, const SimTimeNs* lat,
                BatchCtx& ctx, PebsSampler& sampler,
                std::uint64_t* pebs_suppressed)
    {
        std::uint8_t f = flags[page];
        if (!(f & kAllocatedBit)) [[unlikely]] {
            // allocate() touches only used_ and flags_, neither of
            // which is shadowed, so no flush is needed.
            allocate(page);
            f = flags[page];
        }
        const int t = f & kTierBit;  // kTierBit == 0x1: 0 fast, 1 slow
        const Tier tier = t != 0 ? Tier::kSlow : Tier::kFast;
        flags[page] = static_cast<std::uint8_t>(f | kAccessedBit);
        if constexpr (kFaulted)
            ctx.now += faults_->effective_latency(tier, lat[t], ctx.now);
        else
            ctx.now += lat[t];
        ++ctx.acc[t];
        if (tenants_ != nullptr) [[unlikely]]
            tenants_->note_access(page, t);
        if (f & kTxAccessMask) [[unlikely]] {
            // tx_on_access touches only used_/flags_/tx_ state and the
            // tx counters — nothing shadowed in locals — and returns
            // any time charge, so no flush is needed.
            ctx.now += tx_on_access(page, ctx.now);
        }
        if (f & kTrapBit) [[unlikely]] {
            flags[page] &= static_cast<std::uint8_t>(~kTrapBit);
            ctx.now += config_.hint_fault_cost_ns;
            ++totals_.hint_faults;
            ++window_.hint_faults;
            if (fault_handler_) {
                flush_batch_ctx(ctx);
                ctx.acc[0] = ctx.acc[1] = 0;
                fault_handler_(page, tier);
                ctx.now = now_;
                ctx.handler_ran = true;
            }
        }
        if constexpr (kFaulted) {
            // Same draw order as the engine's scalar loop: the
            // suppression draw happens after the access, at the
            // post-access (and post-trap) timestamp.
            if (faults_->sample_suppressed(ctx.now)) [[unlikely]]
                ++*pebs_suppressed;
            else
                sampler.observe(page, tier);
        } else {
            sampler.observe(page, tier);
        }
    }

    /** Flush shadowed clock/counters back into machine state. */
    void
    flush_batch_ctx(const BatchCtx& ctx)
    {
        now_ = ctx.now;
        totals_.accesses[0] += ctx.acc[0];
        totals_.accesses[1] += ctx.acc[1];
        window_.accesses[0] += ctx.acc[0];
        window_.accesses[1] += ctx.acc[1];
    }

    /** Shared fused loop behind the two access_batch() overloads. */
    template <bool kFaulted>
    void batch_loop(const PageId* pages, std::size_t n,
                    PebsSampler& sampler, std::uint64_t* pebs_suppressed);
    SimTimeNs migration_cost(Tier src, Tier dst) const;
    void account_migration(Tier src, Tier dst);
    void record_failure(MigrateStatus status, PageId page);
    void charge_aborted_copy(Tier src, Tier dst);
    MigrationResult tx_migrate(PageId page, Tier src, Tier dst);
    MigrationResult tx_exchange(PageId a, PageId b, Tier ta, Tier tb);
    MigrationResult tx_free_flip(PageId page, Tier src, Tier dst);
    MigrationResult tx_refuse(MigrateStatus status, PageId page);
    bool tx_reclaim_slot(Tier tier);
    void tx_reclaim_page(PageId page);
    /** Per-access tx hook for flagged pages; returns the application
     *  time to charge (abort contention), so batch_loop can keep the
     *  clock in a local. */
    SimTimeNs tx_on_access(PageId page, SimTimeNs now);
    SimTimeNs tx_abort_page(PageId page, SimTimeNs now);
    void tx_drop_secondary(PageId page, SimTimeNs now);
    void tx_commit_entry(const TxState::Entry& entry);

    /**
     * Shared "free slot exists but is reserved" test: the one place the
     * co-tenant hold is compared against capacity (both the atomic and
     * the transactional migrate paths branch here; DESIGN.md §13).
     */
    bool
    reserved_contended(Tier dst) const
    {
        return reserved_pages(dst) > 0 && free_pages(dst) == 0;
    }

    /** Tenancy gate for migrate()/tx_migrate(); kOk when no ledger. */
    MigrateStatus tenant_check_migration(PageId page, Tier dst,
                                         bool charges_dst);
    /** Tenancy gate for exchange()/tx_exchange(): @p ta is @p a's
     *  current tier, identifying which page is being promoted. */
    MigrateStatus tenant_check_exchange(PageId a, PageId b, Tier ta);

    MachineConfig config_;
    std::vector<std::uint8_t> flags_;
    std::size_t capacity_[kTierCount];
    std::size_t used_[kTierCount] = {0, 0};
    SimTimeNs now_ = 0;
    SimTimeNs latency_[kTierCount];
    Counters totals_;
    Counters window_;
    FaultHandler fault_handler_;
    /** Null when fault-free (the default): zero-overhead fast path. */
    std::unique_ptr<FaultInjector> faults_;
    /** Null when transactional mode is off (the default). */
    std::unique_ptr<TxState> tx_;
    TxResolveHandler tx_handler_;
    /** Null on a single-tenant machine (the default). */
    std::unique_ptr<TenantLedger> tenants_;
    /** Telemetry attachments; all null when telemetry is off. */
    telemetry::Telemetry* telemetry_ = nullptr;
    telemetry::TraceSink* trace_migration_ = nullptr;
    telemetry::MetricsRegistry* metrics_ = nullptr;
    std::size_t hist_migration_cost_ = 0;
};

}  // namespace artmem::memsim

#endif  // ARTMEM_MEMSIM_TIERED_MACHINE_HPP
