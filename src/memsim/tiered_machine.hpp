/**
 * @file
 * The two-tier memory machine model.
 *
 * TieredMachine is the substrate every tiering policy in this repo runs
 * on. It substitutes for the paper's DRAM + Optane testbed: it tracks
 * page residency, charges each access the residing tier's load latency,
 * charges migrations a bandwidth-derived cost, and exposes the three
 * access-monitoring facilities real systems use (ArtMem Section 2.1):
 *
 *  - per-page accessed bits that can be scanned and cleared (page-table
 *    scanning, used by Nimble / Multi-clock / kernel LRU emulations),
 *  - software traps on selected pages that deliver a fault on the next
 *    access (NUMA hint faults, used by AutoNUMA / AutoTiering / TPP),
 *  - an externally driven sampling hook (PEBS, used by MEMTIS / ArtMem;
 *    see PebsSampler).
 *
 * Simulated time advances only through this class, so "execution time"
 * of a workload is machine.now() at the end of the run.
 */
#ifndef ARTMEM_MEMSIM_TIERED_MACHINE_HPP
#define ARTMEM_MEMSIM_TIERED_MACHINE_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "memsim/tier.hpp"
#include "util/types.hpp"

namespace artmem::memsim {

/** Static configuration of a TieredMachine. */
struct MachineConfig {
    /** Migration granule; the paper uses 2 MiB huge pages. */
    Bytes page_size = 2ull << 20;
    /** Device specs, indexed by Tier. Defaults are the paper's Table 2. */
    TierSpec tiers[kTierCount] = {
        TierSpec{92, 81.0, 64ull << 30},
        TierSpec{323, 26.0, 512ull << 30},
    };
    /** Size of the simulated virtual address space (the app footprint). */
    Bytes address_space = 32ull << 30;
    /** Cost of taking one NUMA-hint fault on the critical path (ns). */
    SimTimeNs hint_fault_cost_ns = 500;
    /**
     * Fraction of raw migration device time charged to application time.
     * Migrations run on a background thread but contend for memory
     * bandwidth; 1.0 = fully synchronous, 0.0 = free migrations.
     */
    double migration_contention = 0.25;
    /** Fixed per-page migration overhead: PTE updates, TLB shootdown (ns). */
    SimTimeNs migration_fixed_ns = 2000;

    /** Total page slots in the fast tier. */
    std::size_t fast_capacity_pages() const
    {
        return static_cast<std::size_t>(tiers[0].capacity / page_size);
    }
    /** Total page slots in the slow tier. */
    std::size_t slow_capacity_pages() const
    {
        return static_cast<std::size_t>(tiers[1].capacity / page_size);
    }
};

/**
 * Two-tier machine: page residency, access timing, migration engine,
 * accessed bits, and hint-fault traps.
 */
class TieredMachine
{
  public:
    /** Called when a trapped page is accessed: (page, tier it resides in). */
    using FaultHandler = std::function<void(PageId, Tier)>;

    /** Build a machine; fatal() on inconsistent configuration. */
    explicit TieredMachine(const MachineConfig& config);

    /**
     * Perform one memory access to @p page.
     *
     * First touch allocates the page (fast tier first, overflowing to the
     * slow tier, as in the paper's evaluation setup). Advances simulated
     * time by the tier's load latency, sets the accessed bit, and fires
     * the fault handler if the page was trapped.
     *
     * @return the tier the access was served from.
     */
    Tier access(PageId page);

    /**
     * Allocate pages [first, first+count) in address order without
     * charging access time (a program initializing its heap at startup:
     * fast tier fills first, then overflows to the slow tier).
     */
    void prefault_range(PageId first, std::size_t count);

    /** Current simulated time (ns). */
    SimTimeNs now() const { return now_; }

    /** Advance simulated time without memory traffic (compute phases). */
    void advance(SimTimeNs delta) { now_ += delta; }

    /**
     * Charge policy bookkeeping time (page-table scans, LRU passes,
     * Q-table math). Advances the clock like advance() but is also
     * accounted separately so per-policy CPU overhead can be compared
     * (Section 6.3.3: MEMTIS's migration threads cost ~10x ArtMem's).
     */
    void
    charge_overhead(SimTimeNs delta)
    {
        now_ += delta;
        totals_.overhead_ns += delta;
        window_.overhead_ns += delta;
    }

    /** Number of pages in the virtual address space. */
    std::size_t page_count() const { return flags_.size(); }

    /** Page size in bytes. */
    Bytes page_size() const { return config_.page_size; }

    /** Immutable configuration. */
    const MachineConfig& config() const { return config_; }

    /** Page slots the tier can hold. */
    std::size_t capacity_pages(Tier t) const
    {
        return capacity_[static_cast<int>(t)];
    }

    /** Pages currently resident in the tier. */
    std::size_t used_pages(Tier t) const
    {
        return used_[static_cast<int>(t)];
    }

    /** Free page slots in the tier. */
    std::size_t free_pages(Tier t) const
    {
        return capacity_pages(t) - used_pages(t);
    }

    /** True once the page has been touched. */
    bool is_allocated(PageId page) const
    {
        return (flags_[page] & kAllocatedBit) != 0;
    }

    /** Residency of an allocated page; panic() on unallocated pages. */
    Tier tier_of(PageId page) const;

    /**
     * Move an allocated page to @p dst, charging migration cost.
     * @return false (no-op) if the page is unallocated, already in @p dst,
     *         or @p dst has no free slot.
     */
    bool migrate(PageId page, Tier dst);

    /**
     * Swap the tiers of two pages resident in different tiers (the
     * exchange migration AutoTiering uses when the fast tier is full).
     * @return false if the precondition does not hold.
     */
    bool exchange(PageId a, PageId b);

    /**
     * Bulk sequential transfer of @p length bytes from the tier, charged
     * at the tier's bandwidth (used by the MLC-style Table 2 microbench;
     * regular workload accesses go through access()).
     * @return the time charged.
     */
    SimTimeNs stream(Tier tier, Bytes length);

    /** Read and clear the page's accessed bit. */
    bool test_and_clear_accessed(PageId page);

    /** Read the accessed bit without clearing. */
    bool accessed(PageId page) const
    {
        return (flags_[page] & kAccessedBit) != 0;
    }

    /** Arm a hint-fault trap: next access faults (and clears the trap). */
    void set_trap(PageId page) { flags_[page] |= kTrapBit; }

    /** True if a trap is armed on the page. */
    bool has_trap(PageId page) const
    {
        return (flags_[page] & kTrapBit) != 0;
    }

    /** Install the hint-fault callback (one at a time). */
    void set_fault_handler(FaultHandler handler)
    {
        fault_handler_ = std::move(handler);
    }

    /** Monotonic counters. */
    struct Counters {
        std::uint64_t accesses[kTierCount] = {0, 0};
        std::uint64_t hint_faults = 0;
        std::uint64_t promoted_pages = 0;
        std::uint64_t demoted_pages = 0;
        std::uint64_t exchanges = 0;
        /** Raw device time spent copying pages, before contention scaling. */
        SimTimeNs migration_busy_ns = 0;
        /** Policy bookkeeping time charged via charge_overhead(). */
        SimTimeNs overhead_ns = 0;

        /** Total accesses across tiers. */
        std::uint64_t total_accesses() const
        {
            return accesses[0] + accesses[1];
        }
        /** Fraction of accesses served by the fast tier (1.0 if idle). */
        double fast_ratio() const
        {
            const std::uint64_t total = total_accesses();
            return total == 0
                ? 1.0
                : static_cast<double>(accesses[0]) / static_cast<double>(total);
        }
        /** Pages moved in either direction. */
        std::uint64_t migrated_pages() const
        {
            return promoted_pages + demoted_pages + 2 * exchanges;
        }
    };

    /** Counters since construction. */
    const Counters& totals() const { return totals_; }

    /** Counters since the previous take_window() call (then reset). */
    Counters take_window();

  private:
    static constexpr std::uint8_t kTierBit = 0x1;       // 0 fast, 1 slow
    static constexpr std::uint8_t kAllocatedBit = 0x2;
    static constexpr std::uint8_t kAccessedBit = 0x4;
    static constexpr std::uint8_t kTrapBit = 0x8;

    void allocate(PageId page);
    SimTimeNs migration_cost(Tier src, Tier dst) const;
    void account_migration(Tier src, Tier dst);

    MachineConfig config_;
    std::vector<std::uint8_t> flags_;
    std::size_t capacity_[kTierCount];
    std::size_t used_[kTierCount] = {0, 0};
    SimTimeNs now_ = 0;
    SimTimeNs latency_[kTierCount];
    Counters totals_;
    Counters window_;
    FaultHandler fault_handler_;
};

}  // namespace artmem::memsim

#endif  // ARTMEM_MEMSIM_TIERED_MACHINE_HPP
