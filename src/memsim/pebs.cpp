#include "memsim/pebs.hpp"

#include "util/logging.hpp"

namespace artmem::memsim {

PebsSampler::PebsSampler(const Config& config)
    : buffer_(config.buffer_capacity),
      period_(config.period),
      countdown_(config.period)
{
    if (config.period == 0)
        fatal("PebsSampler: period must be positive");
}

std::size_t
PebsSampler::drain(std::vector<PebsSample>& out, std::size_t max_items)
{
    return buffer_.drain(out, max_items);
}

void
PebsSampler::set_period(std::uint32_t period)
{
    if (period == 0)
        fatal("PebsSampler: period must be positive");
    period_ = period;
    if (countdown_ > period_)
        countdown_ = period_;
}

}  // namespace artmem::memsim
