/**
 * @file
 * Deterministic fault injection for the tiered-memory substrate.
 *
 * The paper's evaluation assumes a well-behaved machine: every migration
 * with a free destination slot succeeds, PEBS never blacks out, and tier
 * latencies are constants. Real deployments violate all three — page
 * migration fails transiently (pinned pages, aborted transactional
 * copies; see Nomad, OSDI'24), Optane exhibits tail-latency spikes under
 * bandwidth hogs (ARMS), and PEBS loses samples in bursts. FaultInjector
 * models four fault classes on a seeded, fully deterministic schedule so
 * that resilience experiments are reproducible bit-for-bit:
 *
 *  (a) typed migration failures — permanently pinned pages, transient
 *      copy aborts, destination contention;
 *  (b) bounded tier-degradation windows — latency multiplied and
 *      bandwidth divided for one tier during periodic windows;
 *  (c) PEBS sampling blackouts and drop bursts — windows where no
 *      samples are recorded, plus an independent per-access drop rate;
 *  (d) external fast-tier capacity pressure — a co-tenant reserving a
 *      fraction of fast-tier page slots during periodic windows;
 *  (e) write storms — periodic windows in which accesses to pages the
 *      transactional migration engine has in flight (or dual-resident)
 *      are classified as writes with elevated probability, aborting
 *      transactions in bursts (only consulted when TxConfig::enabled).
 *
 * Determinism: windows derive purely from simulated time plus a
 * seed-derived phase offset, and per-event draws hash a monotonically
 * increasing draw counter with the seed — the same seed and the same
 * call sequence always produce the same fault schedule. A
 * default-constructed FaultConfig disables every class; TieredMachine
 * then never consults the injector, so the fault layer is a strict
 * no-op when off.
 */
#ifndef ARTMEM_MEMSIM_FAULT_INJECTOR_HPP
#define ARTMEM_MEMSIM_FAULT_INJECTOR_HPP

#include <cstdint>
#include <string_view>
#include <vector>

#include "memsim/tier.hpp"
#include "util/config.hpp"
#include "util/types.hpp"

namespace artmem::telemetry {
class MetricsRegistry;
class Telemetry;
class TraceSink;
}  // namespace artmem::telemetry

namespace artmem::memsim {

/** Static configuration of the four fault classes; defaults disable all. */
struct FaultConfig {
    /** Fault-schedule seed (independent of the workload seed). */
    std::uint64_t seed = 1;

    // --- (a) migration faults -------------------------------------------
    /** Fraction of pages that are permanently pinned (unmigratable). */
    double pinned_fraction = 0.0;
    /** Probability that an attempted migration aborts mid-copy. */
    double transient_rate = 0.0;
    /** Probability that the destination is transiently contended. */
    double contended_rate = 0.0;

    // --- (b) tier degradation windows -----------------------------------
    /** Tier whose device degrades during windows (0 fast, 1 slow). */
    int degrade_tier = 1;
    /** Load-latency multiplier while a degradation window is active. */
    double degrade_latency_factor = 1.0;
    /** Bandwidth divisor while a degradation window is active. */
    double degrade_bandwidth_factor = 1.0;
    /** Window period (simulated ns); 0 disables the class. */
    SimTimeNs degrade_period_ns = 0;
    /** Window length within each period. */
    SimTimeNs degrade_duration_ns = 0;

    // --- (c) PEBS blackouts and drop bursts ------------------------------
    /** Blackout period (simulated ns); 0 disables the class. */
    SimTimeNs blackout_period_ns = 0;
    /** Blackout length within each period (no samples recorded). */
    SimTimeNs blackout_duration_ns = 0;
    /** Independent per-access sample drop probability (drop bursts). */
    double sample_drop_rate = 0.0;

    // --- (d) fast-tier capacity pressure ---------------------------------
    /** Fraction of fast-tier slots a co-tenant grabs during windows. */
    double pressure_fraction = 0.0;
    /** Pressure period (simulated ns); 0 disables the class. */
    SimTimeNs pressure_period_ns = 0;
    /** Pressure window length within each period. */
    SimTimeNs pressure_duration_ns = 0;

    // --- (e) write storms (transactional migration aborts) ---------------
    /**
     * Write probability for accesses to in-flight / dual-resident pages
     * while a storm window is active. Only consulted by the
     * transactional migration engine (TxConfig::enabled); it raises the
     * engine's baseline write_ratio inside windows, aborting in-flight
     * transactions in bursts ("abort storm").
     */
    double write_storm_rate = 0.0;
    /** Storm period (simulated ns); 0 disables the class. */
    SimTimeNs write_storm_period_ns = 0;
    /** Storm window length within each period. */
    SimTimeNs write_storm_duration_ns = 0;

    /** True if any fault class is active. */
    bool any_enabled() const;

    /** fatal() on out-of-range rates, factors, or windows. */
    void validate() const;
};

/**
 * Parse a FaultConfig from "fault.*" keys of a KvConfig. Unknown
 * "fault."-prefixed keys (and any non-"fault." key, which would
 * indicate the wrong file was passed) produce a fatal() naming the
 * offending key. Durations are given in milliseconds of simulated time
 * (e.g. "fault.blackout_period_ms = 50").
 */
FaultConfig parse_fault_config(const KvConfig& config);

/** Names of the built-in fault scenarios (bench_fault_resilience). */
std::vector<std::string_view> fault_scenario_names();

/**
 * Build one of the named scenarios: "none", "migration", "degrade",
 * "blackout", "pressure", or "abort_storm". fatal() on unknown names.
 * "abort_storm" is not in fault_scenario_names() — it only has teeth
 * under --tx-migration, so the default bench sweeps skip it.
 */
FaultConfig make_fault_scenario(std::string_view name, std::uint64_t seed);

/** The deterministic fault model; owned by TieredMachine. */
class FaultInjector
{
  public:
    /**
     * @param config              Validated fault configuration.
     * @param fast_capacity_pages Fast-tier slot count (resolves
     *                            pressure_fraction into pages).
     */
    FaultInjector(const FaultConfig& config,
                  std::size_t fast_capacity_pages);

    /** Configuration in force. */
    const FaultConfig& config() const { return config_; }

    // --- (a) migration faults -------------------------------------------

    /** True if the page is permanently pinned (pure function of seed). */
    bool page_pinned(PageId page) const;

    /** Draw: does this migration abort mid-copy? Consumes one draw. */
    bool migration_transient_abort();

    /** Draw: is the destination contended? Consumes one draw. */
    bool migration_contended();

    // --- (b) tier degradation -------------------------------------------

    /** True while @p tier is inside a degradation window. */
    bool tier_degraded(Tier tier, SimTimeNs now) const;

    /** Effective load latency for the tier at @p now. */
    SimTimeNs effective_latency(Tier tier, SimTimeNs base,
                                SimTimeNs now) const;

    /** Bandwidth divisor for the tier at @p now (1.0 outside windows). */
    double bandwidth_penalty(Tier tier, SimTimeNs now) const;

    // --- (c) sampling faults --------------------------------------------

    /** True while a PEBS blackout window is active. */
    bool sampling_blackout(SimTimeNs now) const;

    /**
     * True if this access's sample must be suppressed: inside a
     * blackout window, or lost to the drop-burst rate (one draw).
     */
    bool sample_suppressed(SimTimeNs now);

    // --- (d) capacity pressure ------------------------------------------

    /** Fast-tier slots held by the co-tenant at @p now. */
    std::size_t reserved_fast_pages(SimTimeNs now) const;

    // --- (e) write storms -------------------------------------------------

    /**
     * Write probability a storm imposes on tx-flagged pages at @p now:
     * write_storm_rate inside a window, 0 outside. Pure function of
     * simulated time — consumes no draws.
     */
    double tx_write_storm_rate(SimTimeNs now) const;

    /** Draws consumed so far (tests: schedule progress). */
    std::uint64_t draws() const { return draw_counter_; }

    // --- reconciliation bookkeeping (verify/invariant_checker) -----------

    /** Transient-abort draws that came up true. Every one must appear
     *  as a failed_transient in the machine's counters. */
    std::uint64_t transient_aborts() const { return transient_aborts_; }

    /** Contention draws that came up true (a lower bound on the
     *  machine's failed_contended: capacity pressure adds more). */
    std::uint64_t contended_hits() const { return contended_hits_; }

    /** Samples suppressed via sample_suppressed() (blackout or drop). */
    std::uint64_t suppressed_samples() const { return suppressed_samples_; }

    /**
     * Attach (or with nullptr detach) the run's telemetry: blackout
     * window transitions become kPebs trace events and drop-burst
     * suppressions a counter. Purely observational — the fault
     * schedule and draw sequence are unchanged.
     */
    void set_telemetry(telemetry::Telemetry* telemetry);

  private:
    double draw();
    bool in_window(SimTimeNs now, SimTimeNs period, SimTimeNs duration,
                   SimTimeNs offset) const;

    FaultConfig config_;
    std::size_t pressure_pages_ = 0;
    SimTimeNs degrade_offset_ = 0;
    SimTimeNs blackout_offset_ = 0;
    SimTimeNs pressure_offset_ = 0;
    SimTimeNs write_storm_offset_ = 0;
    std::uint64_t draw_counter_ = 0;
    std::uint64_t transient_aborts_ = 0;
    std::uint64_t contended_hits_ = 0;
    std::uint64_t suppressed_samples_ = 0;
    telemetry::TraceSink* trace_pebs_ = nullptr;
    telemetry::MetricsRegistry* metrics_ = nullptr;
    std::size_t drop_counter_ = 0;
    bool in_blackout_ = false;  ///< Trace-only blackout edge detector.
};

}  // namespace artmem::memsim

#endif  // ARTMEM_MEMSIM_FAULT_INJECTOR_HPP
