/**
 * @file
 * Memory tier identifiers and per-tier device specifications for the
 * two-tier (fast DRAM + slow PM/CXL) machine model.
 */
#ifndef ARTMEM_MEMSIM_TIER_HPP
#define ARTMEM_MEMSIM_TIER_HPP

#include <cstdint>
#include <string_view>

#include "util/types.hpp"

namespace artmem::memsim {

/** Which memory tier a page lives in. */
enum class Tier : std::uint8_t {
    kFast = 0,  ///< DRAM-class tier (92 ns in the paper's testbed).
    kSlow = 1,  ///< PM/CXL-class capacity tier (323 ns in the paper).
};

/** Number of tiers in the machine model. */
inline constexpr int kTierCount = 2;

/** Printable tier name. */
std::string_view tier_name(Tier t);

/** The other tier. */
inline Tier
other_tier(Tier t)
{
    return t == Tier::kFast ? Tier::kSlow : Tier::kFast;
}

/**
 * Device characteristics of one tier. Defaults follow the paper's
 * Table 2 measurements of the DRAM + Optane testbed.
 */
struct TierSpec {
    /** Average loaded read latency of one access (ns). */
    SimTimeNs load_latency_ns = 92;
    /** Peak sequential bandwidth (GB/s); governs migration cost. */
    double bandwidth_gbps = 81.0;
    /** Capacity in bytes. */
    Bytes capacity = 64ull << 30;
};

}  // namespace artmem::memsim

#endif  // ARTMEM_MEMSIM_TIER_HPP
