#include "memsim/mlc.hpp"

#include "util/logging.hpp"

namespace artmem::memsim {

MlcResult
measure_tier(TieredMachine& machine, Tier tier, std::uint64_t accesses,
             Bytes stream_bytes)
{
    // Probe working set: a handful of pages pinned to the target tier.
    constexpr std::size_t kProbePages = 8;
    if (machine.page_count() < kProbePages)
        fatal("measure_tier: machine address space too small");
    for (PageId p = 0; p < kProbePages; ++p) {
        machine.access(p);  // ensure allocated
        if (machine.tier_of(p) != tier && !machine.migrate(p, tier))
            fatal("measure_tier: cannot pin probe pages into ",
                  tier_name(tier), " tier");
    }

    MlcResult result;

    // Latency: dependent-load chain over the probe pages.
    const SimTimeNs lat_start = machine.now();
    for (std::uint64_t i = 0; i < accesses; ++i)
        machine.access(static_cast<PageId>(i % kProbePages));
    result.latency_ns = static_cast<double>(machine.now() - lat_start) /
                        static_cast<double>(accesses);

    // Bandwidth: bulk sequential stream from the tier.
    const SimTimeNs bw_time = machine.stream(tier, stream_bytes);
    result.bandwidth_gbps =
        static_cast<double>(stream_bytes) / static_cast<double>(bw_time);

    return result;
}

}  // namespace artmem::memsim
