/**
 * @file
 * Sharded access front end: parallel ownership scan + deterministic
 * epoch merge (DESIGN.md §12).
 *
 * The simulation hot loop is a serial dependency chain — every access
 * advances the one simulated clock — so it cannot be parallelised by
 * splitting the access stream naively. What CAN be parallelised is the
 * per-access page-metadata work: reading the flag byte, classifying the
 * access, and setting the accessed bit. ShardedAccessEngine splits the
 * page space into fixed ownership slices, lets one shard per slice
 * group do that metadata work concurrently (phase 1), and then replays
 * the batch serially in original order to advance the clock, charge
 * latencies, and feed the PEBS sampler (phase 2, the "epoch merge").
 *
 * Determinism contract: results are byte-identical across shard counts
 * AND to the unsharded batch loop, because
 *
 *  - ownership is a pure function of the page number over a FIXED
 *    number of slices (64), independent of the shard count — shards
 *    own slice groups, so changing --shards only changes which thread
 *    did the scan, never what was scanned;
 *  - phase 1 performs no clock-, counter-, RNG-, or sampler-visible
 *    work. Its only machine mutation is setting accessed bits on
 *    owned plain pages — a write the serial replay would have done
 *    anyway, and one nothing can observe mid-batch (policies read
 *    accessed bits only from tick/interval callbacks, which run
 *    between batches);
 *  - phase 2 walks the batch in original index order on the calling
 *    thread, consuming each shard's (index-sorted) lane, so every
 *    latency charge, fault-injector draw, and sampler observation
 *    happens in exactly the legacy order;
 *  - accesses that phase 1 cannot pre-classify (first touch, armed
 *    trap, transactional flags) are marked special and replayed
 *    through TieredMachine::access_step() — the same code the
 *    unsharded loop runs — with a fresh flag read;
 *  - the moment a trap handler actually runs (it may migrate pages,
 *    invalidating pre-scanned tiers), phase 2 falls back to
 *    access_step() for the entire remaining batch ("legacy tail").
 *
 * Thread safety: shards touch disjoint flag bytes (ownership is a
 * partition), each worker writes only its own cache-line-aligned lane,
 * and the ThreadPool's wait() barrier orders phase 1 before phase 2 —
 * no locks needed beyond the pool's own annotated util::Mutex
 * internals. scripts/check_sanitizers.sh runs the sharded suites under
 * TSan to enforce this.
 */
#ifndef ARTMEM_MEMSIM_SHARDED_ACCESS_HPP
#define ARTMEM_MEMSIM_SHARDED_ACCESS_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "memsim/pebs.hpp"
#include "memsim/tiered_machine.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"

namespace artmem::memsim {

/**
 * Parallel per-shard metadata scan + serial deterministic replay over
 * one TieredMachine. Construct once per run and call process() /
 * process_faulted() wherever access_batch() / access_batch_faulted()
 * would be called; the outputs are bit-identical (tests/test_sharded
 * and tests/test_diff_model enforce this against the scalar oracle).
 */
class ShardedAccessEngine
{
  public:
    /**
     * Ownership slices in the page space. Fixed (not a function of the
     * shard count) so that the owner map — and therefore every lane's
     * content — is identical for every --shards value. 64 slices caps
     * useful shard counts at 64, far above any machine this simulator
     * targets.
     */
    static constexpr unsigned kNumSlices = 64;

    /**
     * Pages per ownership block: 64 pages = one cache line of the
     * machine's flag array, so one shard's phase-1 writes never share
     * a line with another's (beyond unaligned vector edges).
     */
    static constexpr unsigned kSliceBlockShift = 6;

    /** Hard cap on the batch index packed into a lane entry. */
    static constexpr std::size_t kMaxBatch = 1u << 30;

    struct Config {
        /** Shard count; 1..kNumSlices. 1 = serial scan, no pool. */
        unsigned shards = 1;
        /**
         * Base seed for the per-shard audit streams, derived per lane
         * via derive_seed(seed, SeedDomain::kShard, lane) — disjoint
         * from sweep-job streams by construction (util/rng.hpp).
         */
        std::uint64_t seed = 0;
        /**
         * Enable randomized phase-1 self-checks: each lane re-reads
         * ~1/1024 of its classified flag bytes and panics on any
         * classification/ownership inconsistency. Output-neutral (the
         * audit RNG feeds nothing observable). Wired to
         * EngineConfig::check_invariants.
         */
        bool audit = false;
    };

    /** Bind to @p machine; fatal() on an out-of-range shard count. */
    ShardedAccessEngine(TieredMachine& machine, const Config& config);

    /** Sharded equivalent of TieredMachine::access_batch(). */
    void process(const PageId* pages, std::size_t n, PebsSampler& sampler);

    /** Sharded equivalent of TieredMachine::access_batch_faulted(). */
    void process_faulted(const PageId* pages, std::size_t n,
                         PebsSampler& sampler,
                         std::uint64_t& pebs_suppressed);

    /** Ownership slice of a page: block-cyclic over kNumSlices. */
    static unsigned
    slice_of(PageId page)
    {
        return static_cast<unsigned>(page >> kSliceBlockShift) &
               (kNumSlices - 1);
    }

    /** Shard that owns @p page under this engine's shard count. */
    unsigned owner_of(PageId page) const
    {
        return slice_owner_[slice_of(page)];
    }

    /** Shard that owns slice @p slice (slice % shards). */
    unsigned slice_owner(unsigned slice) const
    {
        return slice_owner_[slice & (kNumSlices - 1)];
    }

    /** Configured shard count. */
    unsigned shards() const { return shards_; }

    /** Batches processed so far. */
    std::uint64_t batches() const { return batches_; }

    /** Batches that fell back to the legacy tail mid-way. */
    std::uint64_t legacy_tails() const { return legacy_tails_; }

    /** Phase-1 self-check samples performed across all lanes. */
    std::uint64_t audited_accesses() const;

  private:
    /** Packed lane-entry codes (low 2 bits; high 30 = batch index). */
    static constexpr std::uint32_t kCodeFast = 0;     // plain, fast tier
    static constexpr std::uint32_t kCodeSlow = 1;     // plain, slow tier
    static constexpr std::uint32_t kCodeSpecial = 2;  // replay access_step

    /**
     * Per-shard scan output. Cache-line aligned so concurrent workers
     * never write the same line; entries are naturally sorted by batch
     * index because each worker scans the batch front to back.
     */
    struct alignas(64) Lane {
        std::vector<std::uint32_t> entries;
        std::size_t cursor = 0;
        /** Private audit stream; never feeds simulation output. */
        Rng rng;
        std::uint64_t audited = 0;
    };

    /** Phase 1 for one shard: classify owned pages, set accessed bits. */
    void scan_lane(unsigned lane, const PageId* pages, std::size_t n);

    /** Phase 1 fan-out + phase 2 serial epoch merge. */
    template <bool kFaulted>
    void process_impl(const PageId* pages, std::size_t n,
                      PebsSampler& sampler, std::uint64_t* pebs_suppressed);

    [[noreturn]] void panic_partition(PageId page, std::size_t index,
                                      std::uint32_t entry) const;

    TieredMachine& machine_;
    const unsigned shards_;
    const bool audit_;
    std::uint8_t slice_owner_[kNumSlices];
    std::vector<Lane> lanes_;
    /** Workers for shards 1..N-1; null when shards_ == 1. Shard 0
     *  always scans on the calling thread. */
    std::unique_ptr<ThreadPool> pool_;
    std::uint64_t batches_ = 0;
    std::uint64_t legacy_tails_ = 0;
};

}  // namespace artmem::memsim

#endif  // ARTMEM_MEMSIM_SHARDED_ACCESS_HPP
