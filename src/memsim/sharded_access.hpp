/**
 * @file
 * Sharded access front end: parallel ownership scan + deterministic
 * epoch merge (DESIGN.md §12).
 *
 * The simulation hot loop is a serial dependency chain — every access
 * advances the one simulated clock — so it cannot be parallelised by
 * splitting the access stream naively. What CAN be parallelised is the
 * per-access page-metadata work: reading the flag byte, classifying the
 * access, and setting the accessed bit. ShardedAccessEngine splits the
 * page space into fixed ownership slices, lets one shard per slice
 * group do that metadata work concurrently (phase 1), and then merges
 * the batch deterministically to advance the clock, charge latencies,
 * and feed the PEBS sampler (phase 2, the "epoch merge").
 *
 * Phase 2 comes in two flavours:
 *
 *  - the SERIAL merge (Config::parallel_merge == false, and the
 *    fallback whenever a batch contains a special access): walk the
 *    batch in original index order on the calling thread, consuming
 *    each shard's (index-sorted) lane, so every latency charge,
 *    fault-injector draw, and sampler observation happens in exactly
 *    the legacy order. This is the oracle the parallel merge is
 *    diffed against (tests/test_diff_model.cpp, four-way lockstep).
 *
 *  - the PARALLEL merge (Config::parallel_merge == true, all-plain
 *    batches): each lane privately accumulates its owned accesses'
 *    latency sum, per-tier counts, per-tenant counts, per-shard PEBS
 *    sampler records, and per-shard LRU segment touches; a
 *    deterministic fold then combines lane accumulators in fixed
 *    shard order at batch end, and the per-shard sampler streams /
 *    LRU segments are merged only at decision-interval boundaries
 *    (merge_boundary() / splice_recency(), called by the engine).
 *    Byte-identity holds because
 *      * integer latency sums and access counts are order-free, so a
 *        fixed-order fold reproduces the serial totals exactly;
 *      * whether the global PEBS countdown records observation i of a
 *        batch is pure arithmetic over the batch-entry countdown
 *        (PebsSampler::plan()), which each lane evaluates for its own
 *        offsets independently; records are published at the next
 *        boundary in (sim_time, shard, seq) order — and since the
 *        simulated clock strictly increases at every access, that
 *        order IS the global access-sequence order, so the ring
 *        receives the same cumulative push sequence before every
 *        drain (identical records AND identical drops);
 *      * under a fault injector the clock chain (effective_latency
 *        depends on the current time) and the suppression draws
 *        (order-dependent RNG) are irreducibly serial, so a cheap
 *        serial "timebase scan" (phase 2a) computes per-index charges
 *        and record/suppression flags first, and the lanes then do
 *        everything else in parallel (phase 2b);
 *      * any batch containing a special access (first touch, armed
 *        trap, transactional flags) takes the serial merge after
 *        flushing pending records, preserving stream order.
 *
 * Determinism contract: results are byte-identical across shard counts
 * AND merge modes AND to the unsharded batch loop, because
 *
 *  - ownership is a pure function of the page number over a FIXED
 *    number of slices (64), independent of the shard count — shards
 *    own slice groups, so changing --shards only changes which thread
 *    did the scan, never what was scanned;
 *  - phase 1 performs no clock-, counter-, RNG-, or sampler-visible
 *    work. Its only machine mutation is setting accessed bits on
 *    owned plain pages — a write the serial replay would have done
 *    anyway, and one nothing can observe mid-batch (policies read
 *    accessed bits only from tick/interval callbacks, which run
 *    between batches);
 *  - accesses that phase 1 cannot pre-classify are marked special and
 *    replayed through TieredMachine::access_step() — the same code the
 *    unsharded loop runs — with a fresh flag read;
 *  - the moment a trap handler actually runs (it may migrate pages,
 *    invalidating pre-scanned tiers), the serial merge falls back to
 *    access_step() for the entire remaining batch ("legacy tail").
 *
 * Thread safety: shards touch disjoint flag bytes (ownership is a
 * partition), each worker writes only its own cache-line-aligned lane
 * (and, in phase 2b, its own LRU segment and owned pages' stamps), and
 * the ThreadPool's wait() barriers order phase 1 before phase 2 and
 * phase 2b before the fold — no locks needed beyond the pool's own
 * annotated util::Mutex internals. scripts/check_sanitizers.sh runs
 * the sharded suites under TSan to enforce this.
 */
#ifndef ARTMEM_MEMSIM_SHARDED_ACCESS_HPP
#define ARTMEM_MEMSIM_SHARDED_ACCESS_HPP

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "lru/sharded_lru.hpp"
#include "memsim/pebs.hpp"
#include "memsim/tiered_machine.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"

namespace artmem::memsim {

/**
 * Parallel per-shard metadata scan + deterministic merge over one
 * TieredMachine. Construct once per run and call process() /
 * process_faulted() wherever access_batch() / access_batch_faulted()
 * would be called; the outputs are bit-identical (tests/test_sharded
 * and tests/test_diff_model enforce this against the scalar oracle).
 * With Config::parallel_merge, the engine must also call
 * merge_boundary() before every sampler drain and splice_recency() at
 * decision boundaries (sim/engine.cpp does both).
 */
class ShardedAccessEngine
{
  public:
    /**
     * Ownership slices in the page space. Fixed (not a function of the
     * shard count) so that the owner map — and therefore every lane's
     * content — is identical for every --shards value. 64 slices caps
     * useful shard counts at 64, far above any machine this simulator
     * targets.
     */
    static constexpr unsigned kNumSlices = 64;

    /**
     * Pages per ownership block: 64 pages = one cache line of the
     * machine's flag array, so one shard's phase-1 writes never share
     * a line with another's (beyond unaligned vector edges).
     */
    static constexpr unsigned kSliceBlockShift = 6;

    /** Hard cap on the batch index packed into a lane entry. */
    static constexpr std::size_t kMaxBatch = 1u << 30;

    struct Config {
        /** Shard count; 1..kNumSlices. 1 = serial scan, no pool. */
        unsigned shards = 1;
        /**
         * Base seed for the per-shard audit streams, derived per lane
         * via derive_seed(seed, SeedDomain::kShard, lane) — disjoint
         * from sweep-job streams by construction (util/rng.hpp).
         */
        std::uint64_t seed = 0;
        /**
         * Enable randomized phase-1 self-checks: each lane re-reads
         * ~1/1024 of its classified flag bytes and panics on any
         * classification/ownership inconsistency. Output-neutral (the
         * audit RNG feeds nothing observable). Wired to
         * EngineConfig::check_invariants.
         */
        bool audit = false;
        /**
         * Run phase 2 of all-plain batches as per-lane parallel work
         * with a deterministic fold (file header). false keeps the
         * serial epoch merge for every batch — the oracle mode the
         * parallel merge is byte-diffed against in tests and CI.
         */
        bool parallel_merge = false;
        /**
         * Test-only: called by every lane when entering (value = lane)
         * and leaving (value = lane + shards) its phase-1 scan and
         * phase-2b walk. tests/test_sharded.cpp uses it to force
         * arbitrary lane completion orders and prove the merge is
         * schedule-invariant; it must not touch simulation state.
         */
        std::function<void(unsigned)> lane_delay_hook = nullptr;
    };

    /**
     * One record captured by a lane's private sampler stream, awaiting
     * the boundary merge. `seq` is the global access sequence number;
     * because the simulated clock strictly increases at every access,
     * ascending seq equals ascending (sim_time, shard, seq) — the
     * merge key — so the boundary merge orders by seq alone. `shard`
     * is the capturing lane, kept redundantly so the kShardPartition
     * audit can cross-check attribution against the ownership map.
     */
    struct PendingSample {
        std::uint64_t seq;
        PageId page;
        std::uint32_t shard;
        Tier tier;
    };

    /** Bind to @p machine; fatal() on an out-of-range shard count. */
    ShardedAccessEngine(TieredMachine& machine, const Config& config);

    /** Sharded equivalent of TieredMachine::access_batch(). */
    void process(const PageId* pages, std::size_t n, PebsSampler& sampler);

    /** Sharded equivalent of TieredMachine::access_batch_faulted(). */
    void process_faulted(const PageId* pages, std::size_t n,
                         PebsSampler& sampler,
                         std::uint64_t& pebs_suppressed);

    /**
     * Publish all pending per-shard sampler records into @p sampler in
     * global access order (k-way merge by seq; see PendingSample) and
     * advance the merge epoch. The engine calls this at every tick and
     * decision boundary BEFORE draining, and process() calls it before
     * any serial-merge batch, so the ring's cumulative push sequence
     * at each drain point is identical to the serial path's. A no-op
     * (beyond the epoch bump) without parallel_merge.
     */
    void merge_boundary(PebsSampler& sampler);

    /**
     * Splice the per-shard LRU segments into the merged recency view
     * (lru::ShardedLru::splice()). Called by the engine at decision
     * boundaries; a no-op without parallel_merge.
     */
    void splice_recency();

    /** Ownership slice of a page: block-cyclic over kNumSlices. */
    static unsigned
    slice_of(PageId page)
    {
        return static_cast<unsigned>(page >> kSliceBlockShift) &
               (kNumSlices - 1);
    }

    /** Shard that owns @p page under this engine's shard count. */
    unsigned owner_of(PageId page) const
    {
        return slice_owner_[slice_of(page)];
    }

    /** Shard that owns slice @p slice (slice % shards). */
    unsigned slice_owner(unsigned slice) const
    {
        return slice_owner_[slice & (kNumSlices - 1)];
    }

    /** Configured shard count. */
    unsigned shards() const { return shards_; }

    /** True when phase 2 runs the per-lane parallel merge. */
    bool parallel_merge() const { return parallel_; }

    /** Batches processed so far. */
    std::uint64_t batches() const { return batches_; }

    /** Batches that fell back to the legacy tail mid-way. */
    std::uint64_t legacy_tails() const { return legacy_tails_; }

    /** Batches merged by the serial epoch walk (every batch when
     *  parallel_merge is off; special-containing batches otherwise). */
    std::uint64_t serial_merges() const { return serial_merges_; }

    /** All-plain batches merged by the per-lane parallel fold. */
    std::uint64_t parallel_merges() const { return parallel_merges_; }

    /**
     * Boundary merges performed (merge_boundary() calls). Doubles as
     * the ownership-map epoch in partition panics: the map is fixed at
     * construction, so the epoch dates how long it has been live.
     */
    std::uint64_t merge_epochs() const { return merge_epochs_; }

    /** Global access sequence number of the next access processed. */
    std::uint64_t next_seq() const { return next_seq_; }

    /** Accesses merged via the parallel fold (audited). */
    std::uint64_t parallel_accesses() const { return parallel_accesses_; }

    /**
     * Authoritative latency charged by parallel-merged batches,
     * recomputed independently of the lane accumulators (from the
     * timebase scan under faults, from per-tier counts × latencies
     * otherwise). The kShardPartition audit reconciles the cumulative
     * per-lane accumulators against this.
     */
    SimTimeNs parallel_charged_ns() const { return parallel_charged_ns_; }

    /** Cumulative accesses folded from lane @p s (audited). */
    std::uint64_t lane_folded_accesses(unsigned s) const
    {
        return lanes_[s].folded_accesses;
    }

    /** Cumulative latency folded from lane @p s (audited). */
    SimTimeNs lane_folded_latency_ns(unsigned s) const
    {
        return lanes_[s].folded_lat_ns;
    }

    /** Lane @p s records awaiting the next boundary merge (audited). */
    const std::vector<PendingSample>& lane_pending(unsigned s) const
    {
        return lanes_[s].pending;
    }

    /** Records awaiting the next boundary merge, across all lanes. */
    std::uint64_t pending_samples() const;

    /**
     * Per-shard LRU segments + merged recency view; null without
     * parallel_merge. Engine-internal state (no policy consumes it
     * yet), audited by the kShardPartition invariant.
     */
    const lru::ShardedLru* recency() const { return recency_.get(); }

    /** Phase-1 self-check samples performed across all lanes. */
    std::uint64_t audited_accesses() const;

  private:
    /** Test-only back door: seeds deliberate state corruption so the
     *  kShardPartition detection paths can be exercised
     *  (tests/test_verify.cpp, tests/test_sharded.cpp). Never defined
     *  in the library. */
    friend struct ShardedEngineTestPeer;

    /** Packed lane-entry codes (low 2 bits; high 30 = batch index). */
    static constexpr std::uint32_t kCodeFast = 0;     // plain, fast tier
    static constexpr std::uint32_t kCodeSlow = 1;     // plain, slow tier
    static constexpr std::uint32_t kCodeSpecial = 2;  // replay access_step

    /**
     * Per-shard scan output and parallel-merge accumulators.
     * Cache-line aligned so concurrent workers never write the same
     * line; entries are naturally sorted by batch index because each
     * worker scans the batch front to back.
     */
    struct alignas(64) Lane {
        std::vector<std::uint32_t> entries;
        std::size_t cursor = 0;
        /** Private audit stream; never feeds simulation output. */
        Rng rng;
        std::uint64_t audited = 0;
        /** Set by scan_lane when it classified any special access. */
        bool saw_special = false;
        // --- per-batch parallel-merge accumulators (phase 2b) -------
        SimTimeNs lat_ns = 0;            ///< Private latency sum.
        std::uint64_t acc[kTierCount] = {0, 0};
        std::uint64_t idx_sum = 0;       ///< Partition checksum input.
        std::vector<std::uint64_t> tenant_acc;  ///< [tenant*2+t].
        // --- cross-batch parallel-merge state -----------------------
        /** Per-shard sampler stream awaiting the boundary merge;
         *  sorted by seq (appended in batch order). */
        std::vector<PendingSample> pending;
        std::size_t merge_cursor = 0;
        /** Cumulative folded totals, reconciled by kShardPartition. */
        std::uint64_t folded_accesses = 0;
        SimTimeNs folded_lat_ns = 0;
    };

    /** Phase 1 for one shard: classify owned pages, set accessed bits. */
    void scan_lane(unsigned lane, const PageId* pages, std::size_t n);

    /** Phase-1 fan-out + barrier. */
    void scan_phase(const PageId* pages, std::size_t n);

    /** Serial epoch merge (oracle path; file header). */
    template <bool kFaulted>
    void merge_serial(const PageId* pages, std::size_t n,
                      PebsSampler& sampler, std::uint64_t* pebs_suppressed);

    /** Parallel phase-2 merge for an all-plain batch (file header). */
    template <bool kFaulted>
    void merge_parallel(const PageId* pages, std::size_t n,
                        PebsSampler& sampler,
                        std::uint64_t* pebs_suppressed);

    /** Phase 2b: one lane's private walk of its owned accesses. */
    template <bool kFaulted>
    void walk_lane(unsigned lane, const PageId* pages,
                   PebsSampler::RecordPlan plan);

    /** Dispatch between the serial and parallel merges. */
    template <bool kFaulted>
    void process_impl(const PageId* pages, std::size_t n,
                      PebsSampler& sampler, std::uint64_t* pebs_suppressed);

    [[noreturn]] void panic_partition(PageId page, std::size_t index,
                                      std::uint32_t entry) const;

    TieredMachine& machine_;
    const unsigned shards_;
    const bool audit_;
    const bool parallel_;
    std::uint8_t slice_owner_[kNumSlices];
    std::vector<Lane> lanes_;
    /** Workers for shards 1..N-1; null when shards_ == 1. Shard 0
     *  always scans on the calling thread. */
    std::unique_ptr<ThreadPool> pool_;
    /** Per-shard LRU segments over owned slices; null unless
     *  parallel_. */
    std::unique_ptr<lru::ShardedLru> recency_;
    /** Test-only lane scheduling hook (Config::lane_delay_hook). */
    std::function<void(unsigned)> delay_hook_;
    // --- parallel-merge batch scratch (indexed by batch offset) -----
    /** True while scan_lane must mirror codes into codes_ (faulted
     *  parallel batches feed the timebase scan from it). */
    bool record_codes_ = false;
    std::vector<std::uint8_t> codes_;
    std::vector<SimTimeNs> charges_;
    std::vector<std::uint8_t> record_flags_;
    /** Clock value after the faulted timebase scan (phase 2a). */
    SimTimeNs faulted_end_now_ = 0;
    std::uint64_t batches_ = 0;
    std::uint64_t legacy_tails_ = 0;
    std::uint64_t serial_merges_ = 0;
    std::uint64_t parallel_merges_ = 0;
    std::uint64_t merge_epochs_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t parallel_accesses_ = 0;
    SimTimeNs parallel_charged_ns_ = 0;
};

}  // namespace artmem::memsim

#endif  // ARTMEM_MEMSIM_SHARDED_ACCESS_HPP
