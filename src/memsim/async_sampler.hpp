/**
 * @file
 * Real-thread demonstration of ArtMem's asynchronous sampling design
 * (Section 4.4): the application thread produces PEBS records into the
 * lock-free ring buffer, while a dedicated background thread — the
 * ksampled analogue — drains them and runs the bookkeeping callback
 * off the critical path.
 *
 * The deterministic simulation engine drains synchronously for
 * reproducibility; this class exists to validate (and test, see
 * tests/test_async.cpp) that the data structures genuinely support the
 * concurrent deployment the paper describes.
 */
#ifndef ARTMEM_MEMSIM_ASYNC_SAMPLER_HPP
#define ARTMEM_MEMSIM_ASYNC_SAMPLER_HPP

#include <atomic>
#include <chrono>
#include <functional>
#include <span>
#include <thread>
#include <vector>

#include "memsim/pebs.hpp"
#include "memsim/ring_buffer.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace artmem::memsim {

/** Background drainer thread over a PEBS ring buffer. */
class AsyncSampler
{
  public:
    /** Invoked on the background thread with each drained batch. */
    using BatchHandler = std::function<void(std::span<const PebsSample>)>;

    /**
     * @param capacity Ring-buffer slots.
     * @param handler  Consumer callback (background thread context).
     * @param poll     Drain poll interval when the buffer is empty.
     */
    AsyncSampler(std::size_t capacity, BatchHandler handler,
                 std::chrono::microseconds poll =
                     std::chrono::microseconds(50));

    /** Joins the background thread after draining remaining records. */
    ~AsyncSampler();

    AsyncSampler(const AsyncSampler&) = delete;
    AsyncSampler& operator=(const AsyncSampler&) = delete;

    /** Producer side (application thread): record one sample. */
    bool
    publish(PageId page, Tier tier)
    {
        return buffer_.push(PebsSample{page, tier});
    }

    /**
     * Publish a pre-merged batch in order, e.g. one decision epoch's
     * per-shard sampler streams after the sharded engine's boundary
     * merge (DESIGN.md §12): the merge interleaves per-lane records
     * back into global access order, and this push preserves that
     * order into the ring the drainer consumes.
     * @return number of samples accepted (the rest dropped full).
     */
    std::size_t
    publish_batch(std::span<const PebsSample> samples)
    {
        std::size_t accepted = 0;
        for (const PebsSample& s : samples)
            accepted += buffer_.push(s) ? 1 : 0;
        return accepted;
    }

    /**
     * Stop accepting work, drain the backlog, and join. Idempotent and
     * safe to race: every caller — including the destructor — blocks
     * until the worker has actually exited, so no caller can observe
     * (or destroy) the sampler while the drainer still runs. (The
     * original compare-and-swap fast path let the losing caller return
     * before the join finished — a lifetime race under concurrent
     * stop()/destruction, caught by the TSan regression in
     * tests/test_async.cpp.)
     */
    void stop() ARTMEM_EXCLUDES(join_mutex_);

    /** Samples delivered to the handler so far. */
    std::uint64_t delivered() const
    {
        return delivered_.load(std::memory_order_relaxed);
    }

    /** Samples dropped at the producer due to a full buffer. */
    std::uint64_t dropped() const { return buffer_.dropped(); }

  private:
    void run();

    RingBuffer<PebsSample> buffer_;
    BatchHandler handler_;
    std::chrono::microseconds poll_;
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> delivered_{0};
    Mutex join_mutex_;  ///< Serializes the stop()/join handshake.
    std::thread worker_ ARTMEM_GUARDED_BY(join_mutex_);
};

}  // namespace artmem::memsim

#endif  // ARTMEM_MEMSIM_ASYNC_SAMPLER_HPP
