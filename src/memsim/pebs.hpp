/**
 * @file
 * PEBS-style hardware access sampling.
 *
 * The Performance Monitoring Unit is modelled as a countdown: one out of
 * every `period` observed memory loads is recorded, with its page and
 * serving tier, into a bounded ring buffer that the (simulated) ksampled
 * thread later drains. Overflowing records are dropped and counted, as
 * real PEBS buffers do. The paper initializes the period to 200 and
 * adjusts it dynamically to bound CPU overhead (Section 6.4).
 */
#ifndef ARTMEM_MEMSIM_PEBS_HPP
#define ARTMEM_MEMSIM_PEBS_HPP

#include <cstdint>
#include <vector>

#include "memsim/ring_buffer.hpp"
#include "memsim/tier.hpp"
#include "util/types.hpp"

namespace artmem::memsim {

/** One PEBS record: which page was loaded and from which tier. */
struct PebsSample {
    PageId page;
    Tier tier;
};

/** Periodic sampler feeding a bounded SPSC buffer. */
class PebsSampler
{
  public:
    /** Sampler configuration. */
    struct Config {
        /** Record one of every `period` accesses. */
        std::uint32_t period = 200;
        /** Ring buffer slots before drops occur. */
        std::size_t buffer_capacity = 1 << 14;
    };

    explicit PebsSampler(const Config& config);

    /** Observe one access; may record it. Hot path. */
    void
    observe(PageId page, Tier tier)
    {
        if (--countdown_ == 0) {
            countdown_ = period_;
            ++recorded_;
            buffer_.push(PebsSample{page, tier});
        }
    }

    /** Drain up to @p max_items pending samples into @p out (appended). */
    std::size_t drain(std::vector<PebsSample>& out, std::size_t max_items);

    /** Current sampling period. */
    std::uint32_t period() const { return period_; }

    /**
     * Change the sampling period (the paper tunes this at runtime to
     * trade accuracy against overhead). Takes effect on the next sample.
     */
    void set_period(std::uint32_t period);

    /** Samples recorded (including ones later dropped by the buffer). */
    std::uint64_t recorded() const { return recorded_; }

    /** Samples dropped due to a full buffer. */
    std::uint64_t dropped() const { return buffer_.dropped(); }

  private:
    RingBuffer<PebsSample> buffer_;
    std::uint32_t period_;
    std::uint32_t countdown_;
    std::uint64_t recorded_ = 0;
};

}  // namespace artmem::memsim

#endif  // ARTMEM_MEMSIM_PEBS_HPP
