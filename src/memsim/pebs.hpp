/**
 * @file
 * PEBS-style hardware access sampling.
 *
 * The Performance Monitoring Unit is modelled as a countdown: one out of
 * every `period` observed memory loads is recorded, with its page and
 * serving tier, into a bounded ring buffer that the (simulated) ksampled
 * thread later drains. Overflowing records are dropped and counted, as
 * real PEBS buffers do. The paper initializes the period to 200 and
 * adjusts it dynamically to bound CPU overhead (Section 6.4).
 */
#ifndef ARTMEM_MEMSIM_PEBS_HPP
#define ARTMEM_MEMSIM_PEBS_HPP

#include <cstdint>
#include <vector>

#include "memsim/ring_buffer.hpp"
#include "memsim/tier.hpp"
#include "util/types.hpp"

namespace artmem::memsim {

/** One PEBS record: which page was loaded and from which tier. */
struct PebsSample {
    PageId page;
    Tier tier;
};

/** Periodic sampler feeding a bounded SPSC buffer. */
class PebsSampler
{
  public:
    /** Sampler configuration. */
    struct Config {
        /** Record one of every `period` accesses. */
        std::uint32_t period = 200;
        /** Ring buffer slots before drops occur. */
        std::size_t buffer_capacity = 1 << 14;
    };

    explicit PebsSampler(const Config& config);

    /** Observe one access; may record it. Hot path. */
    void
    observe(PageId page, Tier tier)
    {
        if (--countdown_ == 0) {
            countdown_ = period_;
            ++recorded_;
            buffer_.push(PebsSample{page, tier});
        }
    }

    /**
     * Which batch offsets a run of @p observations plain observations
     * would record: offset i records iff i >= first and
     * (i - first) % stride == 0 (first == observations when none do).
     * Returned by plan() so sharded lanes can test membership for
     * their own offsets without touching the countdown.
     */
    struct RecordPlan {
        std::uint64_t first;
        std::uint64_t stride;
    };

    /**
     * Advance the countdown as if @p observations consecutive
     * observe() calls happened, without recording anything, and return
     * the offsets that WOULD have recorded. The sharded engine's
     * parallel merge uses this to turn the global countdown — a serial
     * dependency through the interleaved access stream — into pure
     * per-offset arithmetic each lane evaluates independently; the
     * records themselves are published later via push_record() in
     * merge order, so the cumulative (record, drop) sequence at every
     * drain point is identical to the serial observe() chain. Assumes
     * the period does not change inside the run (set_period() is only
     * reachable between batches, from tick/interval callbacks).
     */
    RecordPlan
    plan(std::uint64_t observations)
    {
        RecordPlan p{observations, period_};
        if (observations >= countdown_) {
            p.first = countdown_ - 1;
            const std::uint64_t m = (observations - countdown_) % period_;
            countdown_ = static_cast<std::uint32_t>(period_ - m);
        } else {
            countdown_ -= static_cast<std::uint32_t>(observations);
        }
        return p;
    }

    /**
     * Advance the countdown by one observation; true if that
     * observation records. The faulted parallel merge runs this inside
     * its serial timebase scan (suppression consumes draws in stream
     * order, so the faulted countdown cannot be batch-planned) and
     * defers the actual record via push_record().
     */
    bool
    step_countdown()
    {
        if (--countdown_ == 0) {
            countdown_ = period_;
            return true;
        }
        return false;
    }

    /**
     * Publish one record whose countdown slot was already consumed by
     * plan() / step_countdown(). Exactly observe()'s record half:
     * bumps recorded() and pushes into the ring (dropping if full), so
     * a deferred stream pushed in serial order is indistinguishable
     * from inline observation.
     */
    void
    push_record(PageId page, Tier tier)
    {
        ++recorded_;
        buffer_.push(PebsSample{page, tier});
    }

    /** Observations until the next record (test/audit visibility). */
    std::uint32_t countdown() const { return countdown_; }

    /** Drain up to @p max_items pending samples into @p out (appended). */
    std::size_t drain(std::vector<PebsSample>& out, std::size_t max_items);

    /** Current sampling period. */
    std::uint32_t period() const { return period_; }

    /**
     * Change the sampling period (the paper tunes this at runtime to
     * trade accuracy against overhead). Takes effect on the next sample.
     */
    void set_period(std::uint32_t period);

    /** Samples recorded (including ones later dropped by the buffer). */
    std::uint64_t recorded() const { return recorded_; }

    /** Samples dropped due to a full buffer. */
    std::uint64_t dropped() const { return buffer_.dropped(); }

  private:
    RingBuffer<PebsSample> buffer_;
    std::uint32_t period_;
    std::uint32_t countdown_;
    std::uint64_t recorded_ = 0;
};

}  // namespace artmem::memsim

#endif  // ARTMEM_MEMSIM_PEBS_HPP
