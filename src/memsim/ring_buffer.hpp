/**
 * @file
 * Single-producer/single-consumer lock-free ring buffer.
 *
 * Models the PEBS buffer that the kernel sampling path writes and the
 * ksampled thread drains (ArtMem Section 4.4). The same class backs both
 * the deterministic simulated path (producer and consumer on one thread)
 * and the real std::thread demonstration exercised by the tests.
 *
 * Thread contract (checked under the TSan preset, DESIGN.md §11): at
 * most ONE producer thread calls push() and at most ONE consumer
 * thread calls pop()/drain(). The indices are lock-free atomics, not
 * capability-guarded state, so Clang's thread-safety analysis cannot
 * enforce the pairing — the SPSC discipline is the caller's
 * obligation (AsyncSampler is the in-tree reference pairing), and the
 * acquire/release protocol on head_/tail_ is what makes the handoff
 * of slots_ contents safe.
 */
#ifndef ARTMEM_MEMSIM_RING_BUFFER_HPP
#define ARTMEM_MEMSIM_RING_BUFFER_HPP

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "util/logging.hpp"

namespace artmem::memsim {

/**
 * Fixed-capacity SPSC queue. Capacity is rounded up to a power of two.
 * push() never blocks: when the buffer is full the record is dropped and
 * counted, mirroring how PEBS loses samples under overload.
 */
template <typename T>
class RingBuffer
{
  public:
    /** @param capacity Minimum number of slots (rounded to a power of 2). */
    explicit RingBuffer(std::size_t capacity)
    {
        if (capacity == 0)
            fatal("RingBuffer capacity must be positive");
        std::size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    /** Producer side: enqueue or drop. @return false when dropped. */
    bool
    push(const T& value)
    {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        const std::size_t tail = tail_.load(std::memory_order_acquire);
        if (head - tail > mask_) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        slots_[head & mask_] = value;
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side: dequeue one element if available. */
    std::optional<T>
    pop()
    {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        const std::size_t head = head_.load(std::memory_order_acquire);
        if (tail == head)
            return std::nullopt;
        T value = slots_[tail & mask_];
        tail_.store(tail + 1, std::memory_order_release);
        return value;
    }

    /**
     * Consumer side: drain up to max_items into out (appended).
     * @return number of items drained.
     */
    std::size_t
    drain(std::vector<T>& out, std::size_t max_items)
    {
        std::size_t n = 0;
        while (n < max_items) {
            auto v = pop();
            if (!v)
                break;
            out.push_back(*v);
            ++n;
        }
        return n;
    }

    /** Number of records dropped because the buffer was full. */
    std::uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** Current element count (approximate under concurrency). */
    std::size_t
    size() const
    {
        return head_.load(std::memory_order_acquire) -
               tail_.load(std::memory_order_acquire);
    }

    /** Slot capacity. */
    std::size_t capacity() const { return mask_ + 1; }

  private:
    std::vector<T> slots_;   ///< Written by producer, read by consumer;
                             ///< handed off via head_'s release store.
    std::size_t mask_ = 0;   ///< Immutable after construction.
    std::atomic<std::size_t> head_{0};  ///< Advanced by the producer only.
    std::atomic<std::size_t> tail_{0};  ///< Advanced by the consumer only.
    std::atomic<std::uint64_t> dropped_{0};  ///< Producer-side overflow count.
};

}  // namespace artmem::memsim

#endif  // ARTMEM_MEMSIM_RING_BUFFER_HPP
