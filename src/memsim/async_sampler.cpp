#include "memsim/async_sampler.hpp"

#include "util/logging.hpp"

namespace artmem::memsim {

AsyncSampler::AsyncSampler(std::size_t capacity, BatchHandler handler,
                           std::chrono::microseconds poll)
    : buffer_(capacity), handler_(std::move(handler)), poll_(poll)
{
    if (!handler_)
        fatal("AsyncSampler requires a batch handler");
    MutexLock lock(join_mutex_);
    worker_ = std::thread([this] { run(); });
}

AsyncSampler::~AsyncSampler()
{
    stop();
}

void
AsyncSampler::stop()
{
    stopping_.store(true, std::memory_order_release);
    // Every stop() — not just the first — holds the join handshake
    // until the worker has exited: a caller racing another stop() (or
    // the destructor) must not return while the drainer can still
    // touch the buffer. The old CAS fast path did exactly that.
    MutexLock lock(join_mutex_);
    if (worker_.joinable())
        worker_.join();
}

void
AsyncSampler::run()
{
    std::vector<PebsSample> batch;
    batch.reserve(1024);
    for (;;) {
        batch.clear();
        buffer_.drain(batch, 1024);
        if (!batch.empty()) {
            handler_(batch);
            delivered_.fetch_add(batch.size(), std::memory_order_relaxed);
            continue;  // keep draining while there is work
        }
        if (stopping_.load(std::memory_order_acquire)) {
            // Final sweep so no records are lost on shutdown.
            batch.clear();
            buffer_.drain(batch, static_cast<std::size_t>(-1));
            if (!batch.empty()) {
                handler_(batch);
                delivered_.fetch_add(batch.size(),
                                     std::memory_order_relaxed);
            }
            return;
        }
        std::this_thread::sleep_for(poll_);
    }
}

}  // namespace artmem::memsim
