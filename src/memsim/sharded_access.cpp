#include "memsim/sharded_access.hpp"

#include "util/logging.hpp"

namespace artmem::memsim {

ShardedAccessEngine::ShardedAccessEngine(TieredMachine& machine,
                                         const Config& config)
    : machine_(machine), shards_(config.shards), audit_(config.audit)
{
    if (shards_ == 0 || shards_ > kNumSlices)
        fatal("ShardedAccessEngine: shard count must be in [1, ",
              kNumSlices, "], got ", shards_);
    for (unsigned sl = 0; sl < kNumSlices; ++sl)
        slice_owner_[sl] = static_cast<std::uint8_t>(sl % shards_);
    lanes_.resize(shards_);
    for (unsigned s = 0; s < shards_; ++s) {
        lanes_[s].rng.seed(derive_seed(config.seed, SeedDomain::kShard, s));
        // Worst case every access in a batch lands in one lane; size
        // for the engine's default batch up front so steady state never
        // allocates. Larger batches grow once and stay.
        lanes_[s].entries.reserve(1024);
    }
    if (shards_ > 1)
        pool_ = std::make_unique<ThreadPool>(shards_ - 1);
}

void
ShardedAccessEngine::process(const PageId* pages, std::size_t n,
                             PebsSampler& sampler)
{
    process_impl<false>(pages, n, sampler, nullptr);
}

void
ShardedAccessEngine::process_faulted(const PageId* pages, std::size_t n,
                                     PebsSampler& sampler,
                                     std::uint64_t& pebs_suppressed)
{
    if (machine_.faults_ == nullptr)
        panic("ShardedAccessEngine::process_faulted without an installed "
              "fault injector");
    process_impl<true>(pages, n, sampler, &pebs_suppressed);
}

std::uint64_t
ShardedAccessEngine::audited_accesses() const
{
    std::uint64_t total = 0;
    for (const Lane& lane : lanes_)
        total += lane.audited;
    return total;
}

void
ShardedAccessEngine::scan_lane(unsigned lane, const PageId* pages,
                               std::size_t n)
{
    // Bits that disqualify an access from pre-classification: first
    // touch (not yet allocated), an armed trap, or transactional flags.
    // Everything else is a plain access whose tier cannot change before
    // its phase-2 turn (migrations happen only in handlers and decision
    // boundaries, and a handler firing switches phase 2 to the legacy
    // tail, which ignores pre-scanned codes entirely).
    constexpr std::uint8_t kSpecialMask =
        TieredMachine::kTrapBit | TieredMachine::kTxAccessMask;

    Lane& ln = lanes_[lane];
    ln.entries.clear();
    ln.cursor = 0;
    std::uint8_t* const flags = machine_.flags_.data();
    for (std::size_t i = 0; i < n; ++i) {
        const PageId page = pages[i];
        if (owner_of(page) != lane)
            continue;
        const std::uint8_t f = flags[page];
        std::uint32_t code;
        if ((f & TieredMachine::kAllocatedBit) != 0 &&
            (f & kSpecialMask) == 0) {
            code = f & TieredMachine::kTierBit;  // kCodeFast / kCodeSlow
            // The one phase-1 machine mutation: the accessed bit the
            // serial replay would set. Owned pages only => disjoint
            // bytes across shards. Idempotent under duplicates and
            // invisible to the legacy tail (access_step ORs it anyway).
            flags[page] = static_cast<std::uint8_t>(
                f | TieredMachine::kAccessedBit);
        } else {
            code = kCodeSpecial;
        }
        ln.entries.push_back(static_cast<std::uint32_t>(i) << 2 | code);
        if (audit_ && (ln.rng.next() & 1023u) == 0) {
            // Randomized self-check: re-read the byte just classified
            // and verify the classification is internally consistent.
            // The draw comes from this lane's private kShard-domain
            // stream, so sampling decisions are deterministic per
            // (seed, lane) and feed nothing observable.
            const std::uint8_t g = flags[page];
            if (owner_of(page) != lane)
                panic("sharded audit: lane ", lane,
                      " scanned foreign page ", page);
            if (code != kCodeSpecial &&
                ((g & TieredMachine::kAllocatedBit) == 0 ||
                 (g & TieredMachine::kAccessedBit) == 0 ||
                 (g & TieredMachine::kTierBit) != code))
                panic("sharded audit: page ", page,
                      " classified code ", code,
                      " but flags read back 0x", g);
            ++ln.audited;
        }
    }
}

template <bool kFaulted>
void
ShardedAccessEngine::process_impl(const PageId* pages, std::size_t n,
                                  PebsSampler& sampler,
                                  std::uint64_t* pebs_suppressed)
{
    if (n == 0)
        return;
    if (n > kMaxBatch)
        fatal("ShardedAccessEngine: batch of ", n, " exceeds kMaxBatch");
    ++batches_;

    // Phase 1: ownership scan. Shard 0 runs on the calling thread;
    // shards 1..N-1 on the pool. wait() is the barrier ordering all
    // lane writes (and accessed-bit writes) before phase 2 reads.
    if (shards_ == 1) {
        scan_lane(0, pages, n);
    } else {
        for (unsigned s = 1; s < shards_; ++s)
            pool_->submit([this, s, pages, n] { scan_lane(s, pages, n); });
        scan_lane(0, pages, n);
        pool_->wait();
    }

    // Phase 2: serial epoch merge in original batch order. Exactly the
    // legacy batch loop's observable sequence: plain entries replay the
    // pre-computed classification; special entries (and everything
    // after a trap handler fires) go through access_step(), the shared
    // per-access body.
    std::uint8_t* const flags = machine_.flags_.data();
    const SimTimeNs lat[kTierCount] = {machine_.latency_[0],
                                       machine_.latency_[1]};
    TieredMachine::BatchCtx ctx{machine_.now_, {0, 0}, false};
    std::size_t i = 0;
    for (; i < n && !ctx.handler_ran; ++i) {
        const PageId page = pages[i];
        Lane& ln = lanes_[owner_of(page)];
        const std::uint32_t entry = ln.entries[ln.cursor++];
        if ((entry >> 2) != i) [[unlikely]]
            panic_partition(page, i, entry);
        const std::uint32_t code = entry & 3u;
        if (code == kCodeSpecial) {
            machine_.access_step<kFaulted>(page, flags, lat, ctx, sampler,
                                           pebs_suppressed);
            continue;
        }
        const int t = static_cast<int>(code);
        const Tier tier = t != 0 ? Tier::kSlow : Tier::kFast;
        if constexpr (kFaulted)
            ctx.now +=
                machine_.faults_->effective_latency(tier, lat[t], ctx.now);
        else
            ctx.now += lat[t];
        ++ctx.acc[t];
        if (machine_.tenants_ != nullptr) [[unlikely]]
            machine_.tenants_->note_access(page, t);
        if constexpr (kFaulted) {
            if (machine_.faults_->sample_suppressed(ctx.now)) [[unlikely]]
                ++*pebs_suppressed;
            else
                sampler.observe(page, tier);
        } else {
            sampler.observe(page, tier);
        }
    }
    if (i < n) {
        // Legacy tail: a trap handler ran and may have migrated pages,
        // so every pre-scanned tier code is suspect. Finish the batch
        // through the shared per-access body with fresh flag reads;
        // unconsumed lane entries are simply dropped.
        ++legacy_tails_;
        for (; i < n; ++i)
            machine_.access_step<kFaulted>(pages[i], flags, lat, ctx,
                                           sampler, pebs_suppressed);
    }
    machine_.flush_batch_ctx(ctx);
}

void
ShardedAccessEngine::panic_partition(PageId page, std::size_t index,
                                     std::uint32_t entry) const
{
    panic("sharded epoch merge: lane for page ", page, " (slice ",
          slice_of(page), ", owner ", owner_of(page),
          ") is out of sync at batch index ", index, ": entry index ",
          entry >> 2, " — ownership partition violated");
}

template void ShardedAccessEngine::process_impl<false>(const PageId*,
                                                       std::size_t,
                                                       PebsSampler&,
                                                       std::uint64_t*);
template void ShardedAccessEngine::process_impl<true>(const PageId*,
                                                      std::size_t,
                                                      PebsSampler&,
                                                      std::uint64_t*);

}  // namespace artmem::memsim
