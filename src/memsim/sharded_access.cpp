#include "memsim/sharded_access.hpp"

#include "memsim/tenant_ledger.hpp"
#include "util/logging.hpp"

namespace artmem::memsim {

ShardedAccessEngine::ShardedAccessEngine(TieredMachine& machine,
                                         const Config& config)
    : machine_(machine),
      shards_(config.shards),
      audit_(config.audit),
      parallel_(config.parallel_merge),
      delay_hook_(config.lane_delay_hook)
{
    if (shards_ == 0 || shards_ > kNumSlices)
        fatal("ShardedAccessEngine: shard count must be in [1, ",
              kNumSlices, "], got ", shards_);
    for (unsigned sl = 0; sl < kNumSlices; ++sl)
        slice_owner_[sl] = static_cast<std::uint8_t>(sl % shards_);
    lanes_.resize(shards_);
    for (unsigned s = 0; s < shards_; ++s) {
        lanes_[s].rng.seed(derive_seed(config.seed, SeedDomain::kShard, s));
        // Worst case every access in a batch lands in one lane; size
        // for the engine's default batch up front so steady state never
        // allocates. Larger batches grow once and stay.
        lanes_[s].entries.reserve(1024);
    }
    if (shards_ > 1)
        pool_ = std::make_unique<ThreadPool>(shards_ - 1);
    if (parallel_)
        recency_ = std::make_unique<lru::ShardedLru>(machine.page_count(),
                                                     shards_);
}

void
ShardedAccessEngine::process(const PageId* pages, std::size_t n,
                             PebsSampler& sampler)
{
    process_impl<false>(pages, n, sampler, nullptr);
}

void
ShardedAccessEngine::process_faulted(const PageId* pages, std::size_t n,
                                     PebsSampler& sampler,
                                     std::uint64_t& pebs_suppressed)
{
    if (machine_.faults_ == nullptr)
        panic("ShardedAccessEngine::process_faulted without an installed "
              "fault injector");
    process_impl<true>(pages, n, sampler, &pebs_suppressed);
}

std::uint64_t
ShardedAccessEngine::audited_accesses() const
{
    std::uint64_t total = 0;
    for (const Lane& lane : lanes_)
        total += lane.audited;
    return total;
}

std::uint64_t
ShardedAccessEngine::pending_samples() const
{
    std::uint64_t total = 0;
    for (const Lane& lane : lanes_)
        total += lane.pending.size();
    return total;
}

void
ShardedAccessEngine::merge_boundary(PebsSampler& sampler)
{
    // The ownership map is fixed at construction; the epoch simply
    // dates how many boundary merges it has been live through, which
    // partition panics report for triage.
    ++merge_epochs_;
    if (!parallel_)
        return;
    for (Lane& ln : lanes_)
        ln.merge_cursor = 0;
    // K-way merge of the per-shard streams ascending by seq. The merge
    // key is (sim_time, shard, seq); the simulated clock strictly
    // increases at every access, so sim-time order IS seq order and
    // the remaining components can never be reached as tiebreaks
    // (PendingSample doc). Each lane's pending vector is already
    // seq-sorted (appended in batch order, batch-front-to-back).
    while (true) {
        unsigned best = shards_;
        std::uint64_t best_seq = 0;
        for (unsigned s = 0; s < shards_; ++s) {
            const Lane& ln = lanes_[s];
            if (ln.merge_cursor >= ln.pending.size())
                continue;
            const std::uint64_t seq = ln.pending[ln.merge_cursor].seq;
            if (best == shards_ || seq < best_seq) {
                best = s;
                best_seq = seq;
            }
        }
        if (best == shards_)
            break;
        Lane& ln = lanes_[best];
        const PendingSample& ps = ln.pending[ln.merge_cursor++];
        // Exactly the serial observe()'s record half, replayed in
        // stream order: recorded() advances and the ring drops on
        // overflow at the same cumulative positions.
        sampler.push_record(ps.page, ps.tier);
    }
    for (Lane& ln : lanes_) {
        ln.pending.clear();
        ln.merge_cursor = 0;
    }
}

void
ShardedAccessEngine::splice_recency()
{
    if (recency_ != nullptr)
        recency_->splice();
}

void
ShardedAccessEngine::scan_lane(unsigned lane, const PageId* pages,
                               std::size_t n)
{
    // Bits that disqualify an access from pre-classification: first
    // touch (not yet allocated), an armed trap, or transactional flags.
    // Everything else is a plain access whose tier cannot change before
    // its phase-2 turn (migrations happen only in handlers and decision
    // boundaries, and a handler firing switches phase 2 to the legacy
    // tail, which ignores pre-scanned codes entirely).
    constexpr std::uint8_t kSpecialMask =
        TieredMachine::kTrapBit | TieredMachine::kTxAccessMask;

    if (delay_hook_) [[unlikely]]
        delay_hook_(lane);
    Lane& ln = lanes_[lane];
    ln.entries.clear();
    ln.cursor = 0;
    ln.saw_special = false;
    std::uint8_t* const flags = machine_.flags_.data();
    for (std::size_t i = 0; i < n; ++i) {
        const PageId page = pages[i];
        if (owner_of(page) != lane)
            continue;
        const std::uint8_t f = flags[page];
        std::uint32_t code;
        if ((f & TieredMachine::kAllocatedBit) != 0 &&
            (f & kSpecialMask) == 0) {
            code = f & TieredMachine::kTierBit;  // kCodeFast / kCodeSlow
            // The one phase-1 machine mutation: the accessed bit the
            // serial replay would set. Owned pages only => disjoint
            // bytes across shards. Idempotent under duplicates and
            // invisible to the legacy tail (access_step ORs it anyway).
            flags[page] = static_cast<std::uint8_t>(
                f | TieredMachine::kAccessedBit);
        } else {
            code = kCodeSpecial;
            ln.saw_special = true;
        }
        if (record_codes_)
            codes_[i] = static_cast<std::uint8_t>(code);
        ln.entries.push_back(static_cast<std::uint32_t>(i) << 2 | code);
        if (audit_ && (ln.rng.next() & 1023u) == 0) {
            // Randomized self-check: re-read the byte just classified
            // and verify the classification is internally consistent.
            // The draw comes from this lane's private kShard-domain
            // stream, so sampling decisions are deterministic per
            // (seed, lane) and feed nothing observable.
            const std::uint8_t g = flags[page];
            if (owner_of(page) != lane)
                panic("sharded audit: lane ", lane,
                      " scanned foreign page ", page);
            if (code != kCodeSpecial &&
                ((g & TieredMachine::kAllocatedBit) == 0 ||
                 (g & TieredMachine::kAccessedBit) == 0 ||
                 (g & TieredMachine::kTierBit) != code))
                panic("sharded audit: page ", page,
                      " classified code ", code,
                      " but flags read back 0x", g);
            ++ln.audited;
        }
    }
    if (delay_hook_) [[unlikely]]
        delay_hook_(lane + shards_);
}

void
ShardedAccessEngine::scan_phase(const PageId* pages, std::size_t n)
{
    // Shard 0 runs on the calling thread; shards 1..N-1 on the pool.
    // wait() is the barrier ordering all lane writes (and accessed-bit
    // writes) before phase 2 reads.
    if (shards_ == 1) {
        scan_lane(0, pages, n);
    } else {
        for (unsigned s = 1; s < shards_; ++s)
            pool_->submit([this, s, pages, n] { scan_lane(s, pages, n); });
        scan_lane(0, pages, n);
        pool_->wait();
    }
}

template <bool kFaulted>
void
ShardedAccessEngine::merge_serial(const PageId* pages, std::size_t n,
                                  PebsSampler& sampler,
                                  std::uint64_t* pebs_suppressed)
{
    // Serial epoch merge in original batch order. Exactly the legacy
    // batch loop's observable sequence: plain entries replay the
    // pre-computed classification; special entries (and everything
    // after a trap handler fires) go through access_step(), the shared
    // per-access body.
    std::uint8_t* const flags = machine_.flags_.data();
    const SimTimeNs lat[kTierCount] = {machine_.latency_[0],
                                       machine_.latency_[1]};
    TieredMachine::BatchCtx ctx{machine_.now_, {0, 0}, false};
    std::size_t i = 0;
    for (; i < n && !ctx.handler_ran; ++i) {
        const PageId page = pages[i];
        Lane& ln = lanes_[owner_of(page)];
        const std::uint32_t entry = ln.entries[ln.cursor++];
        if ((entry >> 2) != i) [[unlikely]]
            panic_partition(page, i, entry);
        const std::uint32_t code = entry & 3u;
        if (code == kCodeSpecial) {
            machine_.access_step<kFaulted>(page, flags, lat, ctx, sampler,
                                           pebs_suppressed);
            continue;
        }
        const int t = static_cast<int>(code);
        const Tier tier = t != 0 ? Tier::kSlow : Tier::kFast;
        if constexpr (kFaulted)
            ctx.now +=
                machine_.faults_->effective_latency(tier, lat[t], ctx.now);
        else
            ctx.now += lat[t];
        ++ctx.acc[t];
        if (machine_.tenants_ != nullptr) [[unlikely]]
            machine_.tenants_->note_access(page, t);
        if constexpr (kFaulted) {
            if (machine_.faults_->sample_suppressed(ctx.now)) [[unlikely]]
                ++*pebs_suppressed;
            else
                sampler.observe(page, tier);
        } else {
            sampler.observe(page, tier);
        }
    }
    if (i < n) {
        // Legacy tail: a trap handler ran and may have migrated pages,
        // so every pre-scanned tier code is suspect. Finish the batch
        // through the shared per-access body with fresh flag reads;
        // unconsumed lane entries are simply dropped.
        ++legacy_tails_;
        for (; i < n; ++i)
            machine_.access_step<kFaulted>(pages[i], flags, lat, ctx,
                                           sampler, pebs_suppressed);
    }
    machine_.flush_batch_ctx(ctx);
}

template <bool kFaulted>
void
ShardedAccessEngine::walk_lane(unsigned lane, const PageId* pages,
                               PebsSampler::RecordPlan plan)
{
    if (delay_hook_) [[unlikely]]
        delay_hook_(lane);
    Lane& ln = lanes_[lane];
    ln.acc[0] = 0;
    ln.acc[1] = 0;
    ln.lat_ns = 0;
    ln.idx_sum = 0;
    TenantLedger* const tenants = machine_.tenants_.get();
    if (tenants != nullptr)
        ln.tenant_acc.assign(
            static_cast<std::size_t>(tenants->tenant_count()) * kTierCount,
            0);
    const SimTimeNs lat0 = machine_.latency_[0];
    const SimTimeNs lat1 = machine_.latency_[1];
    for (const std::uint32_t entry : ln.entries) {
        const std::size_t i = entry >> 2;
        const int t = static_cast<int>(entry & 3u);  // all-plain: 0 / 1
        const PageId page = pages[i];
        const Tier tier = t != 0 ? Tier::kSlow : Tier::kFast;
        ++ln.acc[t];
        ln.idx_sum += i;
        if constexpr (kFaulted)
            ln.lat_ns += charges_[i];
        else
            ln.lat_ns += t != 0 ? lat1 : lat0;
        if (tenants != nullptr) [[unlikely]]
            ++ln.tenant_acc[static_cast<std::size_t>(tenants->owner(page)) *
                                kTierCount +
                            static_cast<std::size_t>(t)];
        bool record;
        if constexpr (kFaulted)
            record = record_flags_[i] != 0;
        else
            record = i >= plan.first && (i - plan.first) % plan.stride == 0;
        const std::uint64_t seq = next_seq_ + i;
        if (record) [[unlikely]]
            ln.pending.push_back(PendingSample{seq, page, lane, tier});
        recency_->touch(lane, page, tier, seq);
    }
    if (delay_hook_) [[unlikely]]
        delay_hook_(lane + shards_);
}

template <bool kFaulted>
void
ShardedAccessEngine::merge_parallel(const PageId* pages, std::size_t n,
                                    PebsSampler& sampler,
                                    std::uint64_t* pebs_suppressed)
{
    const SimTimeNs start = machine_.now_;
    const SimTimeNs lat[kTierCount] = {machine_.latency_[0],
                                       machine_.latency_[1]};
    PebsSampler::RecordPlan plan{n, 1};
    if constexpr (kFaulted) {
        // Phase 2a, the irreducible timebase scan: under a fault
        // injector the clock chain (effective_latency is a function of
        // the current time) and the suppression draws (ordered RNG)
        // cannot be split across lanes, so walk the pre-scanned codes
        // in index order computing per-offset charges and
        // record/suppression flags. Everything else — latency sums,
        // counts, tenants, LRU, record capture — still parallelises in
        // phase 2b.
        charges_.resize(n);
        record_flags_.resize(n);
        FaultInjector* const faults = machine_.faults_.get();
        SimTimeNs now = start;
        for (std::size_t i = 0; i < n; ++i) {
            const unsigned c = codes_[i];
            if (c > 1) [[unlikely]]
                panic("sharded parallel merge: batch offset ", i,
                      " carries no plain classification (code ", c,
                      ", shards ", shards_, ", ownership-map epoch ",
                      merge_epochs_, ") — ownership partition violated");
            const int t = static_cast<int>(c);
            const Tier tier = t != 0 ? Tier::kSlow : Tier::kFast;
            const SimTimeNs d =
                faults->effective_latency(tier, lat[t], now);
            charges_[i] = d;
            now += d;
            // Same draw order as the serial merge: the suppression
            // draw happens after the access, at the post-access time.
            if (faults->sample_suppressed(now)) [[unlikely]] {
                ++*pebs_suppressed;
                record_flags_[i] = 0;
            } else {
                record_flags_[i] =
                    sampler.step_countdown() ? std::uint8_t{1}
                                             : std::uint8_t{0};
            }
        }
        faulted_end_now_ = now;
    } else {
        // Unfaulted: the countdown advances by exactly one per access,
        // so record membership is pure arithmetic each lane evaluates
        // for its own offsets (PebsSampler::plan()). No serial pass at
        // all.
        plan = sampler.plan(n);
    }

    // Phase 2b: per-lane private walks, disjoint by ownership.
    if (shards_ == 1) {
        walk_lane<kFaulted>(0, pages, plan);
    } else {
        for (unsigned s = 1; s < shards_; ++s)
            pool_->submit([this, s, pages, plan] {
                walk_lane<kFaulted>(s, pages, plan);
            });
        walk_lane<kFaulted>(0, pages, plan);
        pool_->wait();
    }

    // Deterministic fold in fixed shard order. Integer sums are
    // order-free, so the totals equal the serial merge's regardless of
    // which thread finished when (the lane-permutation tests drive
    // this with forced schedules).
    TieredMachine::BatchCtx ctx{start, {0, 0}, false};
    TenantLedger* const tenants = machine_.tenants_.get();
    SimTimeNs lane_lat_total = 0;
    std::uint64_t count = 0;
    std::uint64_t idx_sum = 0;
    for (unsigned s = 0; s < shards_; ++s) {
        Lane& ln = lanes_[s];
        ctx.acc[0] += ln.acc[0];
        ctx.acc[1] += ln.acc[1];
        lane_lat_total += ln.lat_ns;
        count += ln.entries.size();
        idx_sum += ln.idx_sum;
        ln.folded_accesses += ln.acc[0] + ln.acc[1];
        ln.folded_lat_ns += ln.lat_ns;
        if (tenants != nullptr) {
            const std::size_t cells = ln.tenant_acc.size();
            for (std::size_t cell = 0; cell < cells; ++cell) {
                if (ln.tenant_acc[cell] != 0)
                    tenants->fold_accesses(
                        static_cast<std::uint32_t>(cell / kTierCount),
                        static_cast<int>(cell % kTierCount),
                        ln.tenant_acc[cell]);
            }
        }
    }
    // Partition checksum: every batch offset consumed exactly once.
    // (The serial merge checks this per access via lane cursors; the
    // parallel fold checks the aggregate.)
    const std::uint64_t want_idx_sum =
        n == 0 ? 0 : static_cast<std::uint64_t>(n) * (n - 1) / 2;
    if (count != n || idx_sum != want_idx_sum)
        panic("sharded parallel merge: lanes consumed ", count, " of ", n,
              " batch entries (offset checksum ", idx_sum, ", expected ",
              want_idx_sum, ", shards ", shards_,
              ", ownership-map epoch ", merge_epochs_,
              ") — ownership partition violated");
    // Reconcile the private latency accumulators against an
    // independently derived charge for the batch: the timebase scan's
    // clock delta under faults, per-tier counts x tier latency
    // otherwise. The cumulative version of this check lives in the
    // kShardPartition audit.
    SimTimeNs charged;
    if constexpr (kFaulted) {
        charged = faulted_end_now_ - start;
        ctx.now = faulted_end_now_;
    } else {
        charged = ctx.acc[0] * lat[0] + ctx.acc[1] * lat[1];
        ctx.now = start + lane_lat_total;
    }
    if (lane_lat_total != charged)
        panic("sharded parallel merge: lane latency accumulators sum to ",
              lane_lat_total, " ns but the batch charged ", charged,
              " ns (shards ", shards_, ", ownership-map epoch ",
              merge_epochs_, ")");
    parallel_charged_ns_ += charged;
    parallel_accesses_ += n;
    machine_.flush_batch_ctx(ctx);
}

template <bool kFaulted>
void
ShardedAccessEngine::process_impl(const PageId* pages, std::size_t n,
                                  PebsSampler& sampler,
                                  std::uint64_t* pebs_suppressed)
{
    if (n == 0)
        return;
    if (n > kMaxBatch)
        fatal("ShardedAccessEngine: batch of ", n, " exceeds kMaxBatch");
    ++batches_;

    // Phase 1: ownership scan. Faulted parallel batches additionally
    // mirror classifications into codes_ for the timebase scan.
    record_codes_ = parallel_ && kFaulted;
    if (record_codes_)
        codes_.resize(n);
    scan_phase(pages, n);

    // Phase 2: all-plain batches take the parallel merge; any special
    // access (first touch, armed trap, tx flags) falls back to the
    // serial oracle walk for the whole batch — after publishing
    // pending per-shard records, so the ring still sees every record
    // in global stream order.
    bool use_parallel = parallel_;
    if (parallel_) {
        for (const Lane& ln : lanes_) {
            if (ln.saw_special) {
                use_parallel = false;
                break;
            }
        }
    }
    if (use_parallel) {
        ++parallel_merges_;
        merge_parallel<kFaulted>(pages, n, sampler, pebs_suppressed);
    } else {
        if (parallel_)
            merge_boundary(sampler);
        ++serial_merges_;
        merge_serial<kFaulted>(pages, n, sampler, pebs_suppressed);
    }
    next_seq_ += n;
}

void
ShardedAccessEngine::panic_partition(PageId page, std::size_t index,
                                     std::uint32_t entry) const
{
    panic("sharded epoch merge: lane for page ", page, " (slice ",
          slice_of(page), ", owner ", owner_of(page), " of ", shards_,
          " shards) is out of sync at batch index ", index,
          ": entry index ", entry >> 2, " (ownership-map epoch ",
          merge_epochs_, ", batch ", batches_,
          ") — ownership partition violated");
}

template void ShardedAccessEngine::process_impl<false>(const PageId*,
                                                       std::size_t,
                                                       PebsSampler&,
                                                       std::uint64_t*);
template void ShardedAccessEngine::process_impl<true>(const PageId*,
                                                      std::size_t,
                                                      PebsSampler&,
                                                      std::uint64_t*);

}  // namespace artmem::memsim
