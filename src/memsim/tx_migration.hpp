/**
 * @file
 * Transactional-migration configuration and engine state.
 *
 * The default migration engine completes every move atomically inside
 * the caller's decision tick — the well-behaved-machine assumption the
 * paper's evaluation makes. Real tiered systems (Nomad, OSDI'24) run
 * page migration as a copy-then-commit transaction: the copy occupies
 * an in-flight window, concurrent writes abort it, and a clean
 * committed page can stay non-exclusively resident in both tiers until
 * its old slot is reclaimed, making demotion of a still-clean page
 * free.
 *
 * TxConfig selects that transactional mode for TieredMachine; TxState
 * is the engine's runtime state (in-flight table, per-tier reclaim
 * queues, write-classification draw stream). With `enabled == false`
 * (the default) TieredMachine never allocates a TxState and the
 * transactional plumbing is a strict no-op: no draws, no flag bits, no
 * counters, bit-identical behaviour to a build without this file.
 *
 * Determinism: in-flight windows close at `open_time + migration_cost`
 * on the *simulated* clock, and write classification hashes a
 * monotonically increasing draw counter with the tx seed — the same
 * seed and call sequence always produce the same abort schedule.
 */
#ifndef ARTMEM_MEMSIM_TX_MIGRATION_HPP
#define ARTMEM_MEMSIM_TX_MIGRATION_HPP

#include <cstdint>
#include <deque>
#include <vector>

#include "memsim/tier.hpp"
#include "util/config.hpp"
#include "util/types.hpp"

namespace artmem::memsim {

/** Static configuration of the transactional migration engine. */
struct TxConfig {
    /** Master switch; false leaves the classic atomic engine in place. */
    bool enabled = false;
    /** Seed of the write-classification draw stream (independent of the
     *  workload seed and the fault-injector seed). */
    std::uint64_t seed = 1;
    /** Baseline probability that an access to an in-flight or
     *  dual-resident page is a write (abort storms raise it). */
    double write_ratio = 0.0;
    /** Maximum concurrently open transactions; opens beyond this are
     *  refused with MigrateStatus::kTxBusy. */
    std::size_t max_inflight = 64;
    /** Keep the clean source copy resident after commit (non-exclusive
     *  dual residency); false releases the source slot at commit. */
    bool non_exclusive = true;

    /** fatal() on out-of-range rates or a zero in-flight table. */
    void validate() const;
};

/**
 * Parse a TxConfig from "tx.*" keys of a KvConfig. Unknown
 * "tx."-prefixed keys (and any other key, which would indicate the
 * wrong file was passed) produce a fatal() naming the offending key.
 */
TxConfig parse_tx_config(const KvConfig& config);

/**
 * Runtime state of the transactional engine; owned by TieredMachine
 * (null when transactional mode is off). Internal to memsim — tests
 * and the invariant checker read it through TieredMachine accessors.
 */
struct TxState {
    enum class Kind : std::uint8_t { kMigrate, kExchange };

    /** One open transaction. */
    struct Entry {
        PageId page = 0;       ///< Migrating page / exchange page a.
        PageId peer = 0;       ///< Exchange page b (== page for migrates).
        Tier src = Tier::kFast;
        Tier dst = Tier::kSlow;
        SimTimeNs commit_time = 0;  ///< Sim time the copy finishes.
        SimTimeNs busy_ns = 0;      ///< Device time of the full copy.
        std::uint64_t seq = 0;      ///< Open order; commit tiebreaker.
        Kind kind = Kind::kMigrate;
    };

    /** A resolution queued for policy delivery at the next poll. */
    struct Resolved {
        PageId page = 0;
        Tier src = Tier::kFast;
        Tier dst = Tier::kSlow;
        bool committed = false;
    };

    explicit TxState(const TxConfig& c) : config(c) {}

    /**
     * Classify one access to a tx-flagged page as read or write: one
     * seeded draw against @p rate. Counted in write_draws/write_hits so
     * the invariant checker can reconcile aborts and dual-copy drops
     * against the draw stream.
     */
    bool draw_write(double rate);

    TxConfig config;
    /** Open transactions, unordered (commits sort by commit_time, seq). */
    std::vector<Entry> inflight;
    /** Per-tier FIFO of dual-resident pages whose secondary copy lives
     *  in that tier; entries go stale when the copy is dropped and are
     *  skipped on pop. */
    std::deque<PageId> reclaim_queue[kTierCount];
    /** Live dual-resident secondary copies per tier (== kDualBit census). */
    std::size_t reclaimable[kTierCount] = {0, 0};
    /** Resolutions awaiting delivery to the policy. */
    std::vector<Resolved> resolved;
    std::uint64_t next_seq = 0;
    /** Write-classification draws consumed (== the draw counter). */
    std::uint64_t write_draws = 0;
    /** Draws that classified the access as a write. Every hit is either
     *  an abort (in-flight page) or a dual-copy drop. */
    std::uint64_t write_hits = 0;
};

}  // namespace artmem::memsim

#endif  // ARTMEM_MEMSIM_TX_MIGRATION_HPP
