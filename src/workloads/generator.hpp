/**
 * @file
 * Workload abstraction: a generator of page-granular memory accesses.
 *
 * Tiering policies only ever observe which pages a program touches and
 * in what order, so each of the paper's applications is reproduced as
 * an AccessGenerator that emits the page-access stream with that
 * application's characteristic pattern (locality, skew, phase changes).
 * The simulation engine pulls accesses in batches and feeds them to the
 * TieredMachine.
 */
#ifndef ARTMEM_WORKLOADS_GENERATOR_HPP
#define ARTMEM_WORKLOADS_GENERATOR_HPP

#include <span>
#include <string_view>

#include "util/types.hpp"

namespace artmem::workloads {

/** Produces a finite stream of page accesses. */
class AccessGenerator
{
  public:
    virtual ~AccessGenerator() = default;

    /** Workload identifier ("ycsb", "cc", "s1", ...). */
    virtual std::string_view name() const = 0;

    /** Virtual-address footprint in bytes (machine sizing). */
    virtual Bytes footprint() const = 0;

    /**
     * Fill @p out with the next page ids to access.
     * @return number written; 0 means the workload has finished.
     */
    virtual std::size_t fill(std::span<PageId> out) = 0;

    /** Total accesses this generator will produce over its lifetime. */
    virtual std::uint64_t total_accesses() const = 0;
};

}  // namespace artmem::workloads

#endif  // ARTMEM_WORKLOADS_GENERATOR_HPP
