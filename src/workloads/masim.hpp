/**
 * @file
 * MASIM-style configurable access-pattern workload.
 *
 * MASIM ("memory access simulator", used by the paper's Section 3
 * motivation study) lets users describe a workload as phases, each
 * phase being a weighted mix of regions accessed uniformly or
 * sequentially. The four synthetic patterns of Figure 1 are expressed
 * in this vocabulary (see patterns.hpp).
 *
 * Specs can be built programmatically or parsed from a small key=value
 * config (docs/MASIM_FORMAT described in the README).
 */
#ifndef ARTMEM_WORKLOADS_MASIM_HPP
#define ARTMEM_WORKLOADS_MASIM_HPP

#include <string>
#include <vector>

#include "util/config.hpp"
#include "util/rng.hpp"
#include "workloads/generator.hpp"

namespace artmem::workloads {

/** One addressable region within a phase's access mix. */
struct MasimRegion {
    Bytes offset = 0;        ///< Start byte offset within the footprint.
    Bytes size = 0;          ///< Region length in bytes.
    double weight = 1.0;     ///< Relative probability of picking it.
    bool sequential = false; ///< Stride through instead of uniform random.
};

/** A phase: a fixed number of accesses drawn from a region mix. */
struct MasimPhase {
    std::uint64_t accesses = 0;
    std::vector<MasimRegion> regions;
};

/** Full workload description. */
struct MasimSpec {
    std::string name = "masim";
    Bytes footprint = 0;
    std::vector<MasimPhase> phases;
};

/** Generator executing a MasimSpec. */
class Masim final : public AccessGenerator
{
  public:
    /**
     * @param spec      Validated workload description (fatal on errors).
     * @param page_size Machine page size used to map offsets to pages.
     * @param seed      RNG seed.
     */
    Masim(MasimSpec spec, Bytes page_size, std::uint64_t seed);

    /**
     * Parse a phase-structured config:
     *   name = s1
     *   footprint_mib = 32768
     *   phases = 2
     *   phase0.accesses = 1000000
     *   phase0.regions = 2
     *   phase0.region0 = offset_mib size_mib weight [seq]
     */
    static MasimSpec parse_spec(const KvConfig& config);

    std::string_view name() const override { return spec_.name; }
    Bytes footprint() const override { return spec_.footprint; }
    std::size_t fill(std::span<PageId> out) override;
    std::uint64_t total_accesses() const override { return total_; }

    /** The spec in use (tests, Fig. 1 printing). */
    const MasimSpec& spec() const { return spec_; }

  private:
    struct PreparedRegion {
        PageId first_page;
        PageId page_span;
        double cumulative_weight;
        bool sequential;
        PageId cursor = 0;
    };

    void prepare_phase(std::size_t index);

    MasimSpec spec_;
    Bytes page_size_;
    Rng rng_;
    std::uint64_t total_ = 0;
    std::size_t phase_index_ = 0;
    std::uint64_t remaining_in_phase_ = 0;
    std::vector<PreparedRegion> prepared_;
    double weight_sum_ = 0.0;
};

}  // namespace artmem::workloads

#endif  // ARTMEM_WORKLOADS_MASIM_HPP
