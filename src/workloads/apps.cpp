#include "workloads/apps.hpp"

namespace artmem::workloads {

namespace {

constexpr Bytes kGiB = 1ull << 30;

}  // namespace

MasimSpec
xsbench_spec(std::uint64_t total_accesses)
{
    MasimSpec spec;
    spec.name = "xsbench";
    spec.footprint = 69 * kGiB;
    // The unionized energy grid index (~3 GiB here) absorbs most of the
    // accesses of every cross-section lookup; the nuclide grids are
    // touched nearly uniformly.
    MasimPhase phase;
    phase.accesses = total_accesses;
    phase.regions = {
        {32 * kGiB, 3 * kGiB, 55.0, false},   // hot unionized grid index
        {0, 69 * kGiB, 45.0, false},          // random nuclide grid reads
    };
    spec.phases.push_back(std::move(phase));
    return spec;
}

MasimSpec
dlrm_spec(std::uint64_t total_accesses)
{
    MasimSpec spec;
    spec.name = "dlrm";
    spec.footprint = 72 * kGiB;
    // ~70 GiB of embedding tables with nearly uniform gathers ("largely
    // unskewed", Section 6.2) plus a few popular-feature rows; the dense
    // MLP parameters/activations are small (~2 GiB) and swept
    // sequentially in every forward/backward pass.
    MasimPhase phase;
    phase.accesses = total_accesses;
    phase.regions = {
        {70 * kGiB, 2 * kGiB, 30.0, true},    // dense MLP sweep
        {0, 70 * kGiB, 60.0, false},          // embedding gathers
        {24 * kGiB, 1 * kGiB, 10.0, false},   // popular embedding rows
    };
    spec.phases.push_back(std::move(phase));
    return spec;
}

MasimSpec
liblinear_spec(std::uint64_t total_accesses)
{
    MasimSpec spec;
    spec.name = "liblinear";
    spec.footprint = 68 * kGiB;
    const std::uint64_t load_accesses = total_accesses / 10;
    const std::uint64_t early_accesses = (total_accesses * 3) / 10;
    // Phase 1: sequential dataset load.
    MasimPhase load;
    load.accesses = load_accesses;
    load.regions = {{0, 68 * kGiB, 1.0, true}};
    spec.phases.push_back(std::move(load));
    // Phase 2: early gradient descent, relatively uniform access — no
    // page clears a high hotness threshold.
    MasimPhase early;
    early.accesses = early_accesses;
    early.regions = {
        {0, 68 * kGiB, 70.0, false},
        {10 * kGiB, 14 * kGiB, 30.0, false},  // warm pages (counts 8..16)
    };
    spec.phases.push_back(std::move(early));
    // Phase 3: the warm region becomes the hot working set.
    MasimPhase hot;
    hot.accesses = total_accesses - load_accesses - early_accesses;
    hot.regions = {
        {10 * kGiB, 14 * kGiB, 80.0, false},
        {0, 68 * kGiB, 20.0, false},
    };
    spec.phases.push_back(std::move(hot));
    return spec;
}

}  // namespace artmem::workloads
