#include "workloads/ycsb.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace artmem::workloads {

namespace {

/** Phase order the paper runs: A, B, C, F, D. */
constexpr char kPhaseOrder[] = {'A', 'B', 'C', 'F', 'D'};
constexpr int kPhases = 5;

}  // namespace

Ycsb::Ycsb(const Params& params, Bytes page_size, std::uint64_t seed)
    : params_(params), page_size_(page_size), rng_(seed)
{
    if (params_.footprint == 0 || page_size_ == 0)
        fatal("Ycsb: footprint and page size must be positive");
    if (params_.initial_fill <= 0.0 || params_.initial_fill > 1.0)
        fatal("Ycsb: initial_fill must be in (0,1]");
    arena_pages_ = static_cast<PageId>(
        (params_.footprint + page_size_ - 1) / page_size_);
    populated_pages_ = std::max<PageId>(
        1, static_cast<PageId>(static_cast<double>(arena_pages_) *
                               params_.initial_fill));
    zipf_ = std::make_unique<ZipfianGenerator>(populated_pages_,
                                               params_.zipf_theta);
}

char
Ycsb::current_phase() const
{
    const std::uint64_t per_phase =
        std::max<std::uint64_t>(1, params_.total_accesses / kPhases);
    const auto idx =
        std::min<std::uint64_t>(emitted_ / per_phase, kPhases - 1);
    return kPhaseOrder[idx];
}

std::size_t
Ycsb::fill(std::span<PageId> out)
{
    const std::uint64_t budget = params_.total_accesses - emitted_;
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(budget, out.size()));
    for (std::size_t i = 0; i < n; ++i) {
        // Database population: one sequential sweep establishing the
        // slab arena before the A-B-C-F-D phases run.
        if (load_cursor_ < populated_pages_) {
            out[i] = load_cursor_++;
            ++emitted_;
            continue;
        }
        const char phase = current_phase();
        const PageId rank = static_cast<PageId>(zipf_->next(rng_));
        if (phase == 'D') {
            // Latest distribution: popularity tracks recent inserts;
            // 5% of operations insert a new key at the arena top.
            if (populated_pages_ < arena_pages_ && rng_.next_bool(0.05))
                ++populated_pages_;
            out[i] = rank < populated_pages_
                         ? populated_pages_ - 1 - rank
                         : 0;
        } else {
            // Zipfian over the insertion-ordered key space. Workloads
            // A/B/C/F differ in read/write mix, which is irrelevant to
            // page placement; all touch pages with the same skew.
            out[i] = rank;
        }
        ++emitted_;
    }
    return n;
}

}  // namespace artmem::workloads
