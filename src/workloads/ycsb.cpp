#include "workloads/ycsb.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace artmem::workloads {

namespace {

/** Phase order the paper runs: A, B, C, F, D. */
constexpr char kPhaseOrder[] = {'A', 'B', 'C', 'F', 'D'};
constexpr int kPhases = 5;

}  // namespace

Ycsb::Ycsb(const Params& params, Bytes page_size, std::uint64_t seed)
    : params_(params), page_size_(page_size), rng_(seed)
{
    if (params_.footprint == 0 || page_size_ == 0)
        fatal("Ycsb: footprint and page size must be positive");
    if (params_.initial_fill <= 0.0 || params_.initial_fill > 1.0)
        fatal("Ycsb: initial_fill must be in (0,1]");
    arena_pages_ = static_cast<PageId>(
        (params_.footprint + page_size_ - 1) / page_size_);
    populated_pages_ = std::max<PageId>(
        1, static_cast<PageId>(static_cast<double>(arena_pages_) *
                               params_.initial_fill));
    zipf_ = std::make_unique<ZipfianGenerator>(populated_pages_,
                                               params_.zipf_theta);
}

char
Ycsb::current_phase() const
{
    const std::uint64_t per_phase =
        std::max<std::uint64_t>(1, params_.total_accesses / kPhases);
    const auto idx =
        std::min<std::uint64_t>(emitted_ / per_phase, kPhases - 1);
    return kPhaseOrder[idx];
}

std::size_t
Ycsb::fill(std::span<PageId> out)
{
    const std::uint64_t budget = params_.total_accesses - emitted_;
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(budget, out.size()));
    const std::uint64_t per_phase =
        std::max<std::uint64_t>(1, params_.total_accesses / kPhases);
    std::size_t i = 0;
    while (i < n) {
        // Database population: one sequential sweep establishing the
        // slab arena before the A-B-C-F-D phases run. Also re-entered
        // when a phase-D insert grows populated_pages_ past the cursor.
        if (load_cursor_ < populated_pages_) {
            const auto take = static_cast<std::size_t>(
                std::min<std::uint64_t>(populated_pages_ - load_cursor_,
                                        n - i));
            for (std::size_t j = 0; j < take; ++j)
                out[i + j] = load_cursor_++;
            emitted_ += take;
            i += take;
            continue;
        }
        // The phase is a pure function of emitted_, so instead of two
        // integer divisions per access it is computed once per chunk
        // and held until the next phase boundary.
        const auto idx = static_cast<std::size_t>(
            std::min<std::uint64_t>(emitted_ / per_phase, kPhases - 1));
        std::uint64_t chunk = n - i;
        if (idx + 1 < kPhases)
            chunk = std::min<std::uint64_t>(chunk,
                                            (idx + 1) * per_phase - emitted_);
        if (kPhaseOrder[idx] != 'D') {
            // Zipfian over the insertion-ordered key space. Workloads
            // A/B/C/F differ in read/write mix, which is irrelevant to
            // page placement; all touch pages with the same skew. None
            // of them mutate populated_pages_, so the whole chunk is a
            // tight draw loop.
            for (std::uint64_t j = 0; j < chunk; ++j)
                out[i + j] = static_cast<PageId>(zipf_->next(rng_));
            emitted_ += chunk;
            i += chunk;
        } else {
            // Latest distribution: popularity tracks recent inserts;
            // 5% of operations insert a new key at the arena top. An
            // insert re-arms the sequential-load branch above, so this
            // phase keeps the exact per-access loop.
            const std::size_t end = i + static_cast<std::size_t>(chunk);
            while (i < end && load_cursor_ >= populated_pages_) {
                const PageId rank = static_cast<PageId>(zipf_->next(rng_));
                if (populated_pages_ < arena_pages_ && rng_.next_bool(0.05))
                    ++populated_pages_;
                out[i] = rank < populated_pages_
                             ? populated_pages_ - 1 - rank
                             : 0;
                ++emitted_;
                ++i;
            }
        }
    }
    return n;
}

}  // namespace artmem::workloads
