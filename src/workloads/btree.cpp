#include "workloads/btree.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace artmem::workloads {

Btree::Btree(const Params& params, Bytes page_size, std::uint64_t seed)
    : params_(params), page_size_(page_size), rng_(seed)
{
    if (params_.fanout < 2)
        fatal("Btree: fanout must be at least 2");
    if (params_.node_size == 0 || params_.node_size > page_size_)
        fatal("Btree: node_size must be in (0, page_size]");
    // Build levels top-down until the cumulative size fills the
    // footprint; the last (largest) level becomes the leaves.
    Bytes used = 0;
    std::uint64_t nodes = 1;
    while (true) {
        const Bytes level_bytes = nodes * params_.node_size;
        if (used + level_bytes > params_.footprint) {
            // Truncate the final level to exactly fill the footprint.
            const std::uint64_t fit =
                (params_.footprint - used) / params_.node_size;
            if (fit > 0) {
                level_base_.push_back(used);
                level_nodes_.push_back(fit);
            }
            break;
        }
        level_base_.push_back(used);
        level_nodes_.push_back(nodes);
        used += level_bytes;
        nodes *= params_.fanout;
    }
    if (level_base_.size() < 2)
        fatal("Btree: footprint too small for one inner level + leaves");
    leaf_count_ = level_nodes_.back();
    // Key skew is applied over coarse leaf blocks so the Zipfian zeta
    // precomputation stays cheap even with millions of leaves.
    leaf_blocks_ = std::min<std::uint64_t>(leaf_count_, 1u << 16);
    block_size_ = (leaf_count_ + leaf_blocks_ - 1) / leaf_blocks_;
    const double theta = std::clamp(params_.key_theta, 1e-9, 0.999);
    zipf_ = std::make_unique<ZipfianGenerator>(leaf_blocks_, theta);
}

std::size_t
Btree::fill(std::span<PageId> out)
{
    std::size_t produced = 0;
    while (produced < out.size()) {
        // Drain a partially emitted lookup path first.
        if (pending_pos_ < pending_.size()) {
            out[produced++] = pending_[pending_pos_++];
            continue;
        }
        if (emitted_ >= params_.total_accesses)
            break;
        // One lookup: root-to-leaf descent toward a (skewed-)random leaf.
        const std::uint64_t block = zipf_->next(rng_);
        const std::uint64_t leaf = std::min<std::uint64_t>(
            block * block_size_ + rng_.next_below(block_size_),
            leaf_count_ - 1);
        pending_.clear();
        pending_pos_ = 0;
        const std::size_t depth = level_base_.size();
        for (std::size_t level = 0; level < depth; ++level) {
            // The ancestor of `leaf` at this level.
            std::uint64_t node = leaf;
            for (std::size_t below = level; below + 1 < depth; ++below)
                node /= params_.fanout;
            node %= level_nodes_[level];
            const Bytes addr = level_base_[level] + node * params_.node_size;
            pending_.push_back(static_cast<PageId>(addr / page_size_));
        }
        emitted_ += pending_.size();
    }
    return produced;
}

}  // namespace artmem::workloads
