/**
 * @file
 * YCSB-on-Memcached workload emulation (paper Table 3: 32 GiB
 * in-memory database; workloads A, B, C, F, D executed sequentially in
 * the order A-B-C-F-D, E omitted as in the paper).
 *
 * Keys are laid out in insertion order across the slab arena, so
 * Zipfian-popular keys cluster in low addresses (the locality real
 * memcached slabs exhibit for YCSB's ordered insert). Popularity is
 * modelled directly at page granularity: a page aggregates the ~2K keys
 * it stores. Workload D uses the "latest" distribution: popularity
 * concentrates on the most recently inserted keys, shifting the hot
 * region to the top of the arena while 5% of its operations insert.
 */
#ifndef ARTMEM_WORKLOADS_YCSB_HPP
#define ARTMEM_WORKLOADS_YCSB_HPP

#include <memory>
#include <string>

#include "util/rng.hpp"
#include "util/zipf.hpp"
#include "workloads/generator.hpp"

namespace artmem::workloads {

/** YCSB A-B-C-F-D phase sequence over a memcached-like arena. */
class Ycsb final : public AccessGenerator
{
  public:
    /** Workload parameters. */
    struct Params {
        Bytes footprint = 32ull << 30;  ///< Arena size (paper: 32 GiB).
        double zipf_theta = 0.99;       ///< YCSB default skew.
        std::uint64_t total_accesses = 10000000;
        /** Fraction of the arena populated before workload D's inserts. */
        double initial_fill = 0.9;
        /** Advertised workload name (factory variants override it). */
        std::string label = "ycsb";
    };

    Ycsb(const Params& params, Bytes page_size, std::uint64_t seed);

    std::string_view name() const override { return params_.label; }
    Bytes footprint() const override { return params_.footprint; }
    std::size_t fill(std::span<PageId> out) override;
    std::uint64_t total_accesses() const override
    {
        return params_.total_accesses;
    }

    /** Phase label currently executing ('A'..'F'); tests. */
    char current_phase() const;

  private:
    Params params_;
    Bytes page_size_;
    Rng rng_;
    std::unique_ptr<ZipfianGenerator> zipf_;
    std::uint64_t emitted_ = 0;
    PageId arena_pages_ = 0;
    PageId populated_pages_ = 0;  ///< Pages holding inserted keys.
    PageId load_cursor_ = 0;      ///< Population-sweep progress.
};

}  // namespace artmem::workloads

#endif  // ARTMEM_WORKLOADS_YCSB_HPP
