/**
 * @file
 * Access-trace capture and replay.
 *
 * TraceWriter wraps any AccessGenerator and records the page-access
 * stream to a compact binary file; TraceReplay plays such a file back
 * as an AccessGenerator. This allows (a) freezing a stochastic workload
 * so different policies see the *identical* access sequence, and
 * (b) importing externally captured page traces into the harness.
 *
 * Format: 16-byte header ("ARTMEMTR", u32 version, u32 page_size_log2)
 * followed by u64 footprint, u64 count, then `count` little-endian u32
 * page ids.
 */
#ifndef ARTMEM_WORKLOADS_TRACE_HPP
#define ARTMEM_WORKLOADS_TRACE_HPP

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "workloads/generator.hpp"

namespace artmem::workloads {

/** Pass-through generator that tees every access into a trace file. */
class TraceWriter final : public AccessGenerator
{
  public:
    /**
     * @param inner     Wrapped generator (ownership taken).
     * @param path      Output file; fatal if unwritable.
     * @param page_size Page size recorded in the header.
     */
    TraceWriter(std::unique_ptr<AccessGenerator> inner, std::string path,
                Bytes page_size);

    /** Flushes and finalizes the header counts. */
    ~TraceWriter() override;

    std::string_view name() const override { return inner_->name(); }
    Bytes footprint() const override { return inner_->footprint(); }
    std::size_t fill(std::span<PageId> out) override;
    std::uint64_t total_accesses() const override
    {
        return inner_->total_accesses();
    }

    /** Accesses written so far. */
    std::uint64_t written() const { return written_; }

  private:
    std::unique_ptr<AccessGenerator> inner_;
    std::string path_;
    std::ofstream out_;
    std::uint64_t written_ = 0;
};

/** Replays a trace file produced by TraceWriter. */
class TraceReplay final : public AccessGenerator
{
  public:
    /** Load the whole trace; fatal on malformed files. */
    explicit TraceReplay(const std::string& path);

    std::string_view name() const override { return "trace"; }
    Bytes footprint() const override { return footprint_; }
    std::size_t fill(std::span<PageId> out) override;
    std::uint64_t total_accesses() const override
    {
        return accesses_.size();
    }

    /** Page size the trace was captured at. */
    Bytes page_size() const { return page_size_; }

  private:
    std::vector<PageId> accesses_;
    Bytes footprint_ = 0;
    Bytes page_size_ = 0;
    std::size_t cursor_ = 0;
};

}  // namespace artmem::workloads

#endif  // ARTMEM_WORKLOADS_TRACE_HPP
