/**
 * @file
 * In-memory B-tree index lookup workload (Mitosis btree; paper
 * Table 3: 24 GiB footprint, 300M key-value pairs, random lookups).
 *
 * The tree is modelled implicitly: level L (root = level 0) contains
 * fanout^L nodes laid out contiguously, level by level, across the
 * footprint. Every lookup descends root-to-leaf, so a node at level L
 * is touched fanout^(depth-L) times as often as a leaf — the natural
 * hotness gradient that makes index lookups tiering-friendly (the
 * upper levels fit in DRAM, the leaves do not).
 */
#ifndef ARTMEM_WORKLOADS_BTREE_HPP
#define ARTMEM_WORKLOADS_BTREE_HPP

#include <memory>
#include <vector>

#include "util/rng.hpp"
#include "util/zipf.hpp"
#include "workloads/generator.hpp"

namespace artmem::workloads {

/** Random lookups over an implicit fixed-fanout B-tree. */
class Btree final : public AccessGenerator
{
  public:
    /** Index parameters. */
    struct Params {
        Bytes footprint = 24ull << 30;
        std::uint64_t total_accesses = 10000000;
        /** Children per inner node. */
        unsigned fanout = 64;
        /** Bytes per node (one node == part of a page). */
        Bytes node_size = 4096;
        /** Zipf skew of the looked-up keys (1e-9..1; ~0 = uniform). */
        double key_theta = 0.2;
    };

    Btree(const Params& params, Bytes page_size, std::uint64_t seed);

    std::string_view name() const override { return "btree"; }
    Bytes footprint() const override { return params_.footprint; }
    std::size_t fill(std::span<PageId> out) override;
    std::uint64_t total_accesses() const override
    {
        return params_.total_accesses;
    }

    /** Tree depth chosen for the footprint (tests). */
    unsigned depth() const { return static_cast<unsigned>(level_base_.size()); }

  private:
    Params params_;
    Bytes page_size_;
    Rng rng_;
    std::unique_ptr<ZipfianGenerator> zipf_;
    /** Byte offset where each level starts. */
    std::vector<Bytes> level_base_;
    /** Node count of each level. */
    std::vector<std::uint64_t> level_nodes_;
    std::uint64_t emitted_ = 0;
    std::uint64_t leaf_count_ = 0;
    std::uint64_t leaf_blocks_ = 0;
    std::uint64_t block_size_ = 1;
    /** Path buffer between fill() calls when the batch splits a lookup. */
    std::vector<PageId> pending_;
    std::size_t pending_pos_ = 0;
};

}  // namespace artmem::workloads

#endif  // ARTMEM_WORKLOADS_BTREE_HPP
