/**
 * @file
 * Name-based workload factory used by the bench harnesses and examples:
 * maps the Table 3 workload names (plus the S1-S4 patterns) to
 * configured AccessGenerator instances.
 */
#ifndef ARTMEM_WORKLOADS_FACTORY_HPP
#define ARTMEM_WORKLOADS_FACTORY_HPP

#include <memory>
#include <string_view>
#include <vector>

#include "workloads/generator.hpp"

namespace artmem::workloads {

/** All workload names the factory understands. */
std::vector<std::string_view> workload_names();

/** The eight Table 3 application names (no synthetic patterns). */
std::vector<std::string_view> app_workload_names();

/**
 * Build a workload by name ("ycsb", "cc", "sssp", "pr", "xsbench",
 * "dlrm", "btree", "liblinear", "s1".."s4", "uniform", "sequential").
 * fatal() on unknown names.
 *
 * @param name           Workload name.
 * @param page_size      Machine page size.
 * @param total_accesses Access budget.
 * @param seed           RNG seed.
 */
std::unique_ptr<AccessGenerator> make_workload(std::string_view name,
                                               Bytes page_size,
                                               std::uint64_t total_accesses,
                                               std::uint64_t seed);

}  // namespace artmem::workloads

#endif  // ARTMEM_WORKLOADS_FACTORY_HPP
