#include "workloads/patterns.hpp"

#include "util/logging.hpp"

namespace artmem::workloads {

namespace {

constexpr Bytes kGiB = 1ull << 30;
constexpr Bytes kMiB = 1ull << 20;
constexpr Bytes kFootprint = 32 * kGiB;

MasimSpec
make_s1(std::uint64_t total)
{
    // Two 500 MiB hot regions in the slow-allocated half of the
    // footprint receive > 90% of accesses; the rest is background.
    MasimSpec spec;
    spec.name = "s1";
    spec.footprint = kFootprint;
    MasimPhase phase;
    phase.accesses = total;
    phase.regions = {
        {20 * kGiB, 500 * kMiB, 48.5, false},
        {30 * kGiB, 500 * kMiB, 48.5, false},
        {0, kFootprint, 3.0, false},
    };
    spec.phases.push_back(std::move(phase));
    return spec;
}

MasimSpec
make_s2(std::uint64_t total)
{
    // Eight phases; in each, one 2 GiB region is intensely hot and is
    // never accessed again afterwards.
    MasimSpec spec;
    spec.name = "s2";
    spec.footprint = kFootprint;
    constexpr int kPhases = 8;
    for (int i = 0; i < kPhases; ++i) {
        MasimPhase phase;
        phase.accesses = total / kPhases;
        const Bytes offset = static_cast<Bytes>(i) * 4 * kGiB;
        phase.regions = {
            {offset, 2 * kGiB, 94.0, false},
            {0, kFootprint, 6.0, false},
        };
        spec.phases.push_back(std::move(phase));
    }
    return spec;
}

MasimSpec
make_s3(std::uint64_t total)
{
    MasimSpec spec;
    spec.name = "s3";
    spec.footprint = kFootprint;
    MasimPhase phase;
    phase.accesses = total;
    phase.regions = {
        {18 * kGiB, 12 * kGiB, 97.0, false},
        {0, kFootprint, 3.0, false},
    };
    spec.phases.push_back(std::move(phase));
    return spec;
}

MasimSpec
make_s4(std::uint64_t total)
{
    // 20 GiB hot region at roughly half S3's per-page heat
    // (0.80/20GiB vs 0.95/12GiB per GiB).
    MasimSpec spec;
    spec.name = "s4";
    spec.footprint = kFootprint;
    MasimPhase phase;
    phase.accesses = total;
    phase.regions = {
        {8 * kGiB, 20 * kGiB, 90.0, false},
        {0, kFootprint, 10.0, false},
    };
    spec.phases.push_back(std::move(phase));
    return spec;
}

}  // namespace

MasimSpec
pattern_spec(int k, std::uint64_t total_accesses)
{
    switch (k) {
      case 1:
        return make_s1(total_accesses);
      case 2:
        return make_s2(total_accesses);
      case 3:
        return make_s3(total_accesses);
      case 4:
        return make_s4(total_accesses);
      default:
        fatal("pattern_spec: k must be in [1,4], got ", k);
    }
}

}  // namespace artmem::workloads
