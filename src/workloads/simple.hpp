/**
 * @file
 * Elementary generators (uniform random, sequential scan) used by the
 * tests, the MLC harness, and as mix-in components.
 */
#ifndef ARTMEM_WORKLOADS_SIMPLE_HPP
#define ARTMEM_WORKLOADS_SIMPLE_HPP

#include <algorithm>

#include "util/rng.hpp"
#include "workloads/generator.hpp"

namespace artmem::workloads {

/** Uniform random accesses over the whole footprint. */
class UniformRandom final : public AccessGenerator
{
  public:
    UniformRandom(Bytes footprint, Bytes page_size,
                  std::uint64_t total_accesses, std::uint64_t seed)
        : footprint_(footprint),
          pages_(static_cast<PageId>((footprint + page_size - 1) / page_size)),
          total_(total_accesses),
          rng_(seed)
    {
    }

    std::string_view name() const override { return "uniform"; }
    Bytes footprint() const override { return footprint_; }
    std::uint64_t total_accesses() const override { return total_; }

    std::size_t
    fill(std::span<PageId> out) override
    {
        const std::uint64_t budget = total_ - emitted_;
        const auto n = static_cast<std::size_t>(
            std::min<std::uint64_t>(budget, out.size()));
        for (std::size_t i = 0; i < n; ++i)
            out[i] = static_cast<PageId>(rng_.next_below(pages_));
        emitted_ += n;
        return n;
    }

  private:
    Bytes footprint_;
    PageId pages_;
    std::uint64_t total_;
    Rng rng_;
    std::uint64_t emitted_ = 0;
};

/** Repeated sequential sweeps over the footprint. */
class SequentialScan final : public AccessGenerator
{
  public:
    SequentialScan(Bytes footprint, Bytes page_size,
                   std::uint64_t total_accesses)
        : footprint_(footprint),
          pages_(static_cast<PageId>((footprint + page_size - 1) / page_size)),
          total_(total_accesses)
    {
    }

    std::string_view name() const override { return "sequential"; }
    Bytes footprint() const override { return footprint_; }
    std::uint64_t total_accesses() const override { return total_; }

    std::size_t
    fill(std::span<PageId> out) override
    {
        const std::uint64_t budget = total_ - emitted_;
        const auto n = static_cast<std::size_t>(
            std::min<std::uint64_t>(budget, out.size()));
        for (std::size_t i = 0; i < n; ++i) {
            out[i] = cursor_;
            cursor_ = (cursor_ + 1) % pages_;
        }
        emitted_ += n;
        return n;
    }

  private:
    Bytes footprint_;
    PageId pages_;
    std::uint64_t total_;
    PageId cursor_ = 0;
    std::uint64_t emitted_ = 0;
};

}  // namespace artmem::workloads

#endif  // ARTMEM_WORKLOADS_SIMPLE_HPP
