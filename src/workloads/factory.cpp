#include "workloads/factory.hpp"

#include "util/logging.hpp"
#include "workloads/apps.hpp"
#include "workloads/btree.hpp"
#include "workloads/graph.hpp"
#include "workloads/masim.hpp"
#include "workloads/mixer.hpp"
#include "workloads/patterns.hpp"
#include "workloads/simple.hpp"
#include "workloads/ycsb.hpp"

namespace artmem::workloads {

std::vector<std::string_view>
workload_names()
{
    return {"ycsb",  "ycsb_w", "cc",       "sssp", "pr", "xsbench",
            "dlrm",  "btree",  "liblinear", "s1",  "s2", "s3",
            "s4",    "uniform", "sequential"};
}

std::vector<std::string_view>
app_workload_names()
{
    return {"ycsb", "cc",   "sssp",  "pr",
            "xsbench", "dlrm", "btree", "liblinear"};
}

std::unique_ptr<AccessGenerator>
make_workload(std::string_view name, Bytes page_size,
              std::uint64_t total_accesses, std::uint64_t seed)
{
    if (name == "ycsb") {
        Ycsb::Params p;
        p.total_accesses = total_accesses;
        return std::make_unique<Ycsb>(p, page_size, seed);
    }
    if (name == "ycsb_w") {
        // Write-heavy YCSB mix (workload-A-like): hotter skew and more
        // live insertion churn. Paired with --tx-write-ratio to model
        // the update fraction hitting in-flight migrations.
        Ycsb::Params p;
        p.total_accesses = total_accesses;
        p.zipf_theta = 0.999;
        p.initial_fill = 0.8;
        p.label = "ycsb_w";
        return std::make_unique<Ycsb>(p, page_size, seed);
    }
    if (name == "cc") {
        return std::make_unique<GraphWorkload>(
            GraphWorkload::cc(total_accesses), page_size, seed);
    }
    if (name == "sssp") {
        return std::make_unique<GraphWorkload>(
            GraphWorkload::sssp(total_accesses), page_size, seed);
    }
    if (name == "pr") {
        return std::make_unique<GraphWorkload>(
            GraphWorkload::pr(total_accesses), page_size, seed);
    }
    if (name == "xsbench") {
        return std::make_unique<Masim>(xsbench_spec(total_accesses),
                                       page_size, seed);
    }
    if (name == "dlrm") {
        return std::make_unique<Masim>(dlrm_spec(total_accesses), page_size,
                                       seed);
    }
    if (name == "btree") {
        Btree::Params p;
        p.total_accesses = total_accesses;
        return std::make_unique<Btree>(p, page_size, seed);
    }
    if (name == "liblinear") {
        return std::make_unique<Masim>(liblinear_spec(total_accesses),
                                       page_size, seed);
    }
    if (name == "s1" || name == "s2" || name == "s3" || name == "s4") {
        const int k = name[1] - '0';
        return std::make_unique<Masim>(pattern_spec(k, total_accesses),
                                       page_size, seed);
    }
    if (name == "uniform") {
        return std::make_unique<UniformRandom>(32ull << 30, page_size,
                                               total_accesses, seed);
    }
    if (name == "sequential") {
        return std::make_unique<SequentialScan>(32ull << 30, page_size,
                                                total_accesses);
    }
    fatal("make_workload: unknown workload '", std::string(name), "'");
}

}  // namespace artmem::workloads
