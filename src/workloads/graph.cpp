#include "workloads/graph.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace artmem::workloads {

GraphWorkload::GraphWorkload(const Params& params, Bytes page_size,
                             std::uint64_t seed)
    : params_(params), page_size_(page_size), rng_(seed)
{
    if (params_.footprint == 0 || page_size_ == 0)
        fatal("GraphWorkload: footprint and page size must be positive");
    page_count_ =
        static_cast<PageId>((params_.footprint + page_size_ - 1) / page_size_);
    // The zipf domain is the page space: each rank is one "vertex block"
    // whose property data fills one page.
    const PageId domain =
        params_.frontier_window > 0.0
            ? std::max<PageId>(
                  1, static_cast<PageId>(static_cast<double>(page_count_) *
                                         params_.frontier_window))
            : page_count_;
    zipf_ = std::make_unique<ZipfianGenerator>(domain, params_.gather_theta);
}

GraphWorkload::Params
GraphWorkload::cc(std::uint64_t total_accesses)
{
    Params p;
    p.name = "cc";
    p.footprint = 69ull << 30;
    p.total_accesses = total_accesses;
    p.seq_fraction = 0.25;
    p.gather_theta = 0.9;   // hubs dominate label propagation
    p.scramble = false;     // compact hot block (Fig. 10b)
    p.hot_block_offset = 0.55;  // above the 1:1 fast boundary
    return p;
}

GraphWorkload::Params
GraphWorkload::sssp(std::uint64_t total_accesses)
{
    Params p;
    p.name = "sssp";
    p.footprint = 64ull << 30;
    p.total_accesses = total_accesses;
    p.seq_fraction = 0.15;
    p.gather_theta = 0.55;  // minor hot/cold frequency differences
    p.scramble = true;
    p.frontier_window = 0.35;  // delta-stepping frontier sweep (Fig. 10a)
    p.frontier_phases = 10;
    return p;
}

GraphWorkload::Params
GraphWorkload::pr(std::uint64_t total_accesses)
{
    Params p;
    p.name = "pr";
    p.footprint = 25ull << 30;
    p.total_accesses = total_accesses;
    p.seq_fraction = 0.5;   // rank array sweeps every iteration
    p.gather_theta = 0.75;
    p.scramble = true;
    return p;
}

PageId
GraphWorkload::gather_target()
{
    const std::uint64_t rank = zipf_->next(rng_);
    if (params_.frontier_window > 0.0 && params_.frontier_phases > 0) {
        // The frontier base advances once per superstep, wrapping the
        // address space; gathers are skewed within the active window.
        const std::uint64_t per_phase = std::max<std::uint64_t>(
            1, params_.total_accesses /
                   static_cast<std::uint64_t>(params_.frontier_phases));
        const auto phase =
            static_cast<PageId>((emitted_ / per_phase) %
                                static_cast<std::uint64_t>(
                                    params_.frontier_phases));
        const PageId base = static_cast<PageId>(
            (static_cast<std::uint64_t>(phase) * page_count_) /
            static_cast<std::uint64_t>(params_.frontier_phases));
        PageId offset = static_cast<PageId>(rank);
        if (params_.scramble) {
            std::uint64_t h = rank * 0x9e3779b97f4a7c15ull;
            offset = static_cast<PageId>(h % zipf_->item_count());
        }
        return (base + offset) % page_count_;
    }
    if (params_.scramble) {
        std::uint64_t h = rank * 0x9e3779b97f4a7c15ull;
        h ^= h >> 29;
        return static_cast<PageId>(h % page_count_);
    }
    // Compact hot block: ranks map to consecutive pages starting at the
    // configured offset (hub vertices cluster in the property array).
    const PageId base = static_cast<PageId>(
        static_cast<double>(page_count_) * params_.hot_block_offset);
    return (base + static_cast<PageId>(rank)) % page_count_;
}

std::size_t
GraphWorkload::fill(std::span<PageId> out)
{
    const std::uint64_t budget = params_.total_accesses - emitted_;
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(budget, out.size()));
    for (std::size_t i = 0; i < n; ++i) {
        if (rng_.next_bool(params_.seq_fraction)) {
            out[i] = seq_cursor_;
            seq_cursor_ = (seq_cursor_ + 1) % page_count_;
        } else {
            out[i] = gather_target();
        }
        ++emitted_;
    }
    return n;
}

}  // namespace artmem::workloads
