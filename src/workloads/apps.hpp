/**
 * @file
 * MASIM-spec factories for the remaining Table 3 applications whose
 * page-level behaviour is well described as phased region mixes:
 *
 *  - XSBench (69 GiB): Monte Carlo macroscopic cross-section lookups —
 *    every lookup binary-searches the small, intensely hot unionized
 *    energy grid index and then reads a random nuclide grid point from
 *    the huge cold remainder;
 *  - DLRM (72 GiB): embedding-table gathers that are "largely unskewed,
 *    with only a few hot memory regions", plus dense MLP parameters and
 *    activations that are swept sequentially every iteration;
 *  - Liblinear (68 GiB, KDD12): a sequential data-load sweep, then an
 *    early gradient-descent phase with near-uniform access ("no
 *    extremely hot pages"), after which a hot working set emerges —
 *    the pages MEMTIS promotes early (counts 8..16) and ArtMem's
 *    threshold initially skips (Section 6.2's Liblinear discussion).
 */
#ifndef ARTMEM_WORKLOADS_APPS_HPP
#define ARTMEM_WORKLOADS_APPS_HPP

#include "workloads/masim.hpp"

namespace artmem::workloads {

/** XSBench spec (paper footprint: 69 GiB). */
MasimSpec xsbench_spec(std::uint64_t total_accesses);

/** DLRM training spec (72 GiB). */
MasimSpec dlrm_spec(std::uint64_t total_accesses);

/** Liblinear/KDD12 spec (68 GiB). */
MasimSpec liblinear_spec(std::uint64_t total_accesses);

}  // namespace artmem::workloads

#endif  // ARTMEM_WORKLOADS_APPS_HPP
