#include "workloads/mixer.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace artmem::workloads {

Mixer::Mixer(std::vector<std::unique_ptr<AccessGenerator>> children,
             Bytes page_size, std::size_t quantum)
    : quantum_(quantum)
{
    if (children.empty())
        fatal("Mixer: at least one child workload required");
    if (quantum_ == 0)
        fatal("Mixer: quantum must be positive");
    name_ = "mix(";
    Bytes offset = 0;
    for (auto& gen : children) {
        Child child;
        child.page_offset = static_cast<PageId>(offset / page_size);
        total_ += gen->total_accesses();
        if (!children_.empty())
            name_ += '+';
        name_ += gen->name();
        // Stack footprints page-aligned.
        const Bytes aligned =
            (gen->footprint() + page_size - 1) / page_size * page_size;
        offset += aligned;
        child.gen = std::move(gen);
        children_.push_back(std::move(child));
    }
    footprint_ = offset;
    name_ += ")";
}

std::size_t
Mixer::fill(std::span<PageId> out)
{
    std::size_t produced = 0;
    std::size_t idle_rounds = 0;
    while (produced < out.size() && idle_rounds < children_.size()) {
        Child& child = children_[turn_];
        turn_ = (turn_ + 1) % children_.size();
        if (child.done) {
            ++idle_rounds;
            continue;
        }
        const std::size_t want =
            std::min(quantum_, out.size() - produced);
        scratch_.resize(want);
        const std::size_t got =
            child.gen->fill(std::span<PageId>(scratch_.data(), want));
        if (got == 0) {
            child.done = true;
            ++idle_rounds;
            continue;
        }
        idle_rounds = 0;
        for (std::size_t i = 0; i < got; ++i)
            out[produced++] = scratch_[i] + child.page_offset;
    }
    return produced;
}

}  // namespace artmem::workloads
