#include "workloads/trace.hpp"

#include <bit>
#include <cstring>

#include "util/logging.hpp"

namespace artmem::workloads {

namespace {

constexpr char kMagic[8] = {'A', 'R', 'T', 'M', 'E', 'M', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;

struct Header {
    char magic[8];
    std::uint32_t version;
    std::uint32_t page_size_log2;
    std::uint64_t footprint;
    std::uint64_t count;
};

}  // namespace

TraceWriter::TraceWriter(std::unique_ptr<AccessGenerator> inner,
                         std::string path, Bytes page_size)
    : inner_(std::move(inner)),
      path_(std::move(path)),
      out_(path_, std::ios::binary)
{
    if (!inner_)
        fatal("TraceWriter requires a wrapped generator");
    if (!out_)
        fatal("TraceWriter: cannot open ", path_);
    if (!std::has_single_bit(page_size))
        fatal("TraceWriter: page size must be a power of two");
    Header header{};
    std::memcpy(header.magic, kMagic, sizeof(kMagic));
    header.version = kVersion;
    header.page_size_log2 =
        static_cast<std::uint32_t>(std::countr_zero(page_size));
    header.footprint = inner_->footprint();
    header.count = 0;  // fixed up in the destructor
    out_.write(reinterpret_cast<const char*>(&header), sizeof(header));
}

TraceWriter::~TraceWriter()
{
    // Seek back and finalize the access count.
    out_.seekp(offsetof(Header, count), std::ios::beg);
    out_.write(reinterpret_cast<const char*>(&written_), sizeof(written_));
    out_.flush();
    if (!out_)
        warn("TraceWriter: failed to finalize ", path_);
}

std::size_t
TraceWriter::fill(std::span<PageId> out)
{
    const std::size_t n = inner_->fill(out);
    if (n > 0) {
        out_.write(reinterpret_cast<const char*>(out.data()),
                   static_cast<std::streamsize>(n * sizeof(PageId)));
        written_ += n;
    }
    return n;
}

TraceReplay::TraceReplay(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("TraceReplay: cannot open ", path);
    Header header{};
    in.read(reinterpret_cast<char*>(&header), sizeof(header));
    if (!in || std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0)
        fatal("TraceReplay: not an ArtMem trace: ", path);
    if (header.version != kVersion)
        fatal("TraceReplay: unsupported version ", header.version);
    footprint_ = header.footprint;
    page_size_ = Bytes{1} << header.page_size_log2;
    accesses_.resize(header.count);
    in.read(reinterpret_cast<char*>(accesses_.data()),
            static_cast<std::streamsize>(header.count * sizeof(PageId)));
    if (!in)
        fatal("TraceReplay: truncated trace: ", path);
}

std::size_t
TraceReplay::fill(std::span<PageId> out)
{
    std::size_t n = 0;
    while (n < out.size() && cursor_ < accesses_.size())
        out[n++] = accesses_[cursor_++];
    return n;
}

}  // namespace artmem::workloads
