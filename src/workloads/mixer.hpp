/**
 * @file
 * Concurrent-workload mixer for the Section 6.3.10 irregular-pattern
 * study: several child workloads run "simultaneously", their address
 * spaces stacked one after another and their access streams
 * interleaved round-robin in small quanta (a time-sliced scheduler's
 * view of co-running processes).
 */
#ifndef ARTMEM_WORKLOADS_MIXER_HPP
#define ARTMEM_WORKLOADS_MIXER_HPP

#include <memory>
#include <string>
#include <vector>

#include "workloads/generator.hpp"

namespace artmem::workloads {

/** Interleaves child generators over a stacked address space. */
class Mixer final : public AccessGenerator
{
  public:
    /**
     * @param children Child workloads (ownership taken). At least one.
     * @param quantum  Accesses per child per scheduling round.
     */
    Mixer(std::vector<std::unique_ptr<AccessGenerator>> children,
          Bytes page_size, std::size_t quantum = 256);

    std::string_view name() const override { return name_; }
    Bytes footprint() const override { return footprint_; }
    std::size_t fill(std::span<PageId> out) override;
    std::uint64_t total_accesses() const override { return total_; }

  private:
    struct Child {
        std::unique_ptr<AccessGenerator> gen;
        PageId page_offset;
        bool done = false;
    };

    std::vector<Child> children_;
    std::string name_;
    Bytes footprint_ = 0;
    std::uint64_t total_ = 0;
    std::size_t quantum_;
    std::size_t turn_ = 0;
    std::vector<PageId> scratch_;
};

}  // namespace artmem::workloads

#endif  // ARTMEM_WORKLOADS_MIXER_HPP
