#include "workloads/masim.hpp"

#include <algorithm>
#include <sstream>

#include "util/logging.hpp"

namespace artmem::workloads {

Masim::Masim(MasimSpec spec, Bytes page_size, std::uint64_t seed)
    : spec_(std::move(spec)), page_size_(page_size), rng_(seed)
{
    if (page_size_ == 0)
        fatal("Masim: page_size must be positive");
    if (spec_.footprint == 0 || spec_.phases.empty())
        fatal("Masim '", spec_.name, "': footprint and phases required");
    for (const auto& phase : spec_.phases) {
        if (phase.accesses == 0 || phase.regions.empty())
            fatal("Masim '", spec_.name, "': empty phase");
        for (const auto& r : phase.regions) {
            if (r.size == 0 || r.weight <= 0.0)
                fatal("Masim '", spec_.name, "': degenerate region");
            if (r.offset + r.size > spec_.footprint)
                fatal("Masim '", spec_.name,
                      "': region exceeds footprint");
        }
        total_ += phase.accesses;
    }
    prepare_phase(0);
}

void
Masim::prepare_phase(std::size_t index)
{
    phase_index_ = index;
    prepared_.clear();
    if (index >= spec_.phases.size()) {
        remaining_in_phase_ = 0;
        return;
    }
    const MasimPhase& phase = spec_.phases[index];
    remaining_in_phase_ = phase.accesses;
    weight_sum_ = 0.0;
    for (const auto& r : phase.regions) {
        PreparedRegion p;
        p.first_page = static_cast<PageId>(r.offset / page_size_);
        const Bytes last = r.offset + r.size - 1;
        p.page_span =
            static_cast<PageId>(last / page_size_) - p.first_page + 1;
        weight_sum_ += r.weight;
        p.cumulative_weight = weight_sum_;
        p.sequential = r.sequential;
        prepared_.push_back(p);
    }
}

std::size_t
Masim::fill(std::span<PageId> out)
{
    std::size_t produced = 0;
    while (produced < out.size()) {
        if (remaining_in_phase_ == 0) {
            if (phase_index_ + 1 >= spec_.phases.size())
                break;
            prepare_phase(phase_index_ + 1);
            continue;
        }
        // Pick a region by weight (few regions: linear scan).
        const double pick = rng_.next_double() * weight_sum_;
        PreparedRegion* region = &prepared_.back();
        for (auto& p : prepared_) {
            if (pick < p.cumulative_weight) {
                region = &p;
                break;
            }
        }
        PageId page;
        if (region->sequential) {
            page = region->first_page + region->cursor;
            region->cursor = (region->cursor + 1) % region->page_span;
        } else {
            page = region->first_page +
                   static_cast<PageId>(rng_.next_below(region->page_span));
        }
        out[produced++] = page;
        --remaining_in_phase_;
    }
    return produced;
}

MasimSpec
Masim::parse_spec(const KvConfig& config)
{
    MasimSpec spec;
    spec.name = config.get_string("name", "masim");
    spec.footprint =
        static_cast<Bytes>(config.get_int("footprint_mib", 0)) << 20;
    const long long phase_count = config.get_int("phases", 0);
    if (phase_count <= 0)
        fatal("masim spec: 'phases' must be positive");
    // Reject keys the schema does not define: a typo like
    // "phase0.acesses = 1000" would otherwise silently fall back to the
    // default and produce a mysteriously different workload.
    for (const auto& key : config.keys()) {
        bool known = key == "name" || key == "footprint_mib" ||
                     key == "phases";
        if (!known && key.rfind("phase", 0) == 0) {
            const std::size_t dot = key.find('.');
            if (dot != std::string::npos) {
                const std::string index = key.substr(5, dot - 5);
                const std::string field = key.substr(dot + 1);
                const bool index_ok =
                    !index.empty() &&
                    index.find_first_not_of("0123456789") == std::string::npos;
                known = index_ok &&
                        (field == "accesses" || field == "regions" ||
                         (field.rfind("region", 0) == 0 &&
                          field.size() > 6 &&
                          field.find_first_not_of("0123456789", 6) ==
                              std::string::npos));
            }
        }
        if (!known)
            fatal("masim spec: unknown key '", key,
                  "' (expected name, footprint_mib, phases, ",
                  "phase<N>.accesses, phase<N>.regions, phase<N>.region<M>)");
    }
    for (long long i = 0; i < phase_count; ++i) {
        const std::string prefix = "phase" + std::to_string(i) + ".";
        MasimPhase phase;
        phase.accesses = static_cast<std::uint64_t>(
            config.get_int(prefix + "accesses", 0));
        const long long regions = config.get_int(prefix + "regions", 0);
        for (long long r = 0; r < regions; ++r) {
            const auto key = prefix + "region" + std::to_string(r);
            const auto text = config.get(key);
            if (!text)
                fatal("masim spec: missing ", key);
            std::istringstream in(*text);
            double offset_mib = 0, size_mib = 0, weight = 0;
            std::string seq;
            if (!(in >> offset_mib >> size_mib >> weight))
                fatal("masim spec: malformed ", key, ": '", *text,
                      "' (expected '<offset_mib> <size_mib> <weight> ",
                      "[seq|rand]')");
            in >> seq;
            if (!seq.empty() && seq != "seq" && seq != "rand")
                fatal("masim spec: ", key, ": unknown access mode '", seq,
                      "' (expected seq or rand)");
            std::string trailing;
            if (in >> trailing)
                fatal("masim spec: ", key, ": trailing garbage '", trailing,
                      "'");
            MasimRegion region;
            region.offset = static_cast<Bytes>(offset_mib * (1 << 20));
            region.size = static_cast<Bytes>(size_mib * (1 << 20));
            region.weight = weight;
            region.sequential = seq == "seq";
            phase.regions.push_back(region);
        }
        spec.phases.push_back(std::move(phase));
    }
    return spec;
}

}  // namespace artmem::workloads
