/**
 * @file
 * The four manually generated access patterns of Figure 1, expressed
 * as MASIM specs over a 32 GiB footprint (the motivation study runs
 * them against 16 GiB of fast memory):
 *
 *  - S1: high locality — two 500 MiB hot regions take > 90% of accesses;
 *  - S2: transient locality — a region is hot for one phase and then
 *        never accessed again (recency matters, frequency misleads);
 *  - S3: one 12 GiB hot region (fits in DRAM; identification speed
 *        dominates);
 *  - S4: one 20 GiB hot region at half S3's per-page heat (exceeds
 *        DRAM; thrashing avoidance dominates).
 */
#ifndef ARTMEM_WORKLOADS_PATTERNS_HPP
#define ARTMEM_WORKLOADS_PATTERNS_HPP

#include "workloads/masim.hpp"

namespace artmem::workloads {

/** Number of synthetic patterns. */
inline constexpr int kPatternCount = 4;

/**
 * Build the spec of pattern S_k (1-based, k in [1,4]).
 * @param total_accesses Access budget of the run.
 */
MasimSpec pattern_spec(int k, std::uint64_t total_accesses);

}  // namespace artmem::workloads

#endif  // ARTMEM_WORKLOADS_PATTERNS_HPP
