/**
 * @file
 * GAP benchmark suite page-access emulation (CC, SSSP, PageRank).
 *
 * A CSR graph traversal touches memory in two characteristic ways:
 * sequential sweeps over the vertex/edge arrays, and data-dependent
 * gathers into the property array whose per-vertex frequency follows
 * the (power-law) degree distribution. We reproduce those streams over
 * the paper-reported footprints without materializing a multi-GB graph:
 *
 *  - CC (69 GiB, Urand/Kron inputs): label-propagation gathers with a
 *    strongly skewed, spatially compact hot vertex block — the paper's
 *    Figure 10b shows CC's hot data "concentrated in smaller regions";
 *  - SSSP (64 GiB, delta-stepping): a frontier window that sweeps the
 *    graph across supersteps, with mildly skewed gathers — Figure 10a
 *    shows "a broader distribution of hot regions with minor
 *    differences in access frequency";
 *  - PR (25 GiB): alternating full sequential rank sweeps and
 *    scattered degree-weighted gathers.
 */
#ifndef ARTMEM_WORKLOADS_GRAPH_HPP
#define ARTMEM_WORKLOADS_GRAPH_HPP

#include <memory>

#include "util/rng.hpp"
#include "util/zipf.hpp"
#include "workloads/generator.hpp"

namespace artmem::workloads {

/** Parameterized CSR-traversal access stream. */
class GraphWorkload final : public AccessGenerator
{
  public:
    /** Traversal parameters. */
    struct Params {
        std::string name = "graph";
        Bytes footprint = 64ull << 30;
        std::uint64_t total_accesses = 10000000;
        /** Probability an access is part of a sequential array sweep. */
        double seq_fraction = 0.3;
        /** Zipf exponent of the gather skew (degree distribution). */
        double gather_theta = 0.7;
        /** Scatter hot vertices across the address space (hub hashing). */
        bool scramble = false;
        /** Start of the compact hot block, as a fraction of footprint
         *  (only meaningful when scramble = false). */
        double hot_block_offset = 0.4;
        /** Frontier window as a fraction of the footprint (0 = off). */
        double frontier_window = 0.0;
        /** Number of frontier supersteps across the run. */
        int frontier_phases = 0;
    };

    GraphWorkload(const Params& params, Bytes page_size, std::uint64_t seed);

    /** Connected Components preset (paper: 69 GiB footprint). */
    static Params cc(std::uint64_t total_accesses);

    /** Single-Source Shortest Path preset (64 GiB). */
    static Params sssp(std::uint64_t total_accesses);

    /** PageRank preset (25 GiB). */
    static Params pr(std::uint64_t total_accesses);

    std::string_view name() const override { return params_.name; }
    Bytes footprint() const override { return params_.footprint; }
    std::size_t fill(std::span<PageId> out) override;
    std::uint64_t total_accesses() const override
    {
        return params_.total_accesses;
    }

  private:
    PageId gather_target();

    Params params_;
    Bytes page_size_;
    Rng rng_;
    std::unique_ptr<ZipfianGenerator> zipf_;
    PageId page_count_;
    PageId seq_cursor_ = 0;
    std::uint64_t emitted_ = 0;
};

}  // namespace artmem::workloads

#endif  // ARTMEM_WORKLOADS_GRAPH_HPP
