#include "sweep/telemetry_merge.hpp"

#include <ostream>

namespace artmem::sweep {

telemetry::MetricsRegistry
merge_job_metrics(const std::vector<sim::RunResult>& results)
{
    telemetry::MetricsRegistry merged;
    for (const auto& result : results) {
        if (result.telemetry)
            merged.merge(result.telemetry->metrics_registry());
    }
    return merged;
}

telemetry::PhaseProfiler
merge_job_profiles(const std::vector<sim::RunResult>& results)
{
    telemetry::PhaseProfiler merged;
    for (const auto& result : results) {
        if (result.telemetry)
            merged.merge(result.telemetry->phase_profiler());
    }
    return merged;
}

void
write_merged_jsonl(std::ostream& os,
                   const std::vector<sim::RunResult>& results)
{
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& result = results[i];
        if (result.telemetry == nullptr)
            continue;
        if (const auto* sink = result.telemetry->sink())
            sink->write_jsonl(os, static_cast<int>(i));
    }
}

void
write_merged_chrome(std::ostream& os,
                    const std::vector<sim::RunResult>& results)
{
    os << "{\"traceEvents\":[";
    bool first = true;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& result = results[i];
        if (result.telemetry == nullptr)
            continue;
        if (const auto* sink = result.telemetry->sink())
            sink->append_chrome_events(os, static_cast<int>(i), first);
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace artmem::sweep
