/**
 * @file
 * Deterministic parallel sweep subsystem.
 *
 * Every evaluation in the paper is a grid of independent simulations
 * (Figure 7 alone is 8 workloads x 6 ratios x 8 policies). A sweep is
 * described declaratively as a SweepSpec — an ordered list of SweepJob
 * entries, each carrying its labels and everything needed to run it —
 * and executed by a SweepRunner over a bounded worker pool
 * (util/thread_pool.hpp).
 *
 * Determinism contract: a job is a pure function of its SweepJob.
 * Each job constructs its own generator, policy, and TieredMachine on
 * the worker thread (no shared mutable state), its seed is fixed when
 * the spec is built (optionally via derive_seed(base, index), never
 * from scheduling), and results land in a vector ordered by job index.
 * Emitted numbers are therefore bit-identical between --jobs 1 and
 * --jobs N; scripts/ci.sh diffs a two-way run byte-for-byte.
 */
#ifndef ARTMEM_SWEEP_SWEEP_HPP
#define ARTMEM_SWEEP_SWEEP_HPP

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace artmem::sweep {

/** One unit of work: a fully specified run plus its table labels. */
struct SweepJob {
    /** Key cells identifying the job (workload, policy, ratio, ...);
     *  carried through to the result assembly / ResultSink. */
    std::vector<std::string> labels;

    /** Consumed by the default runner (sim::run_experiment). */
    sim::RunSpec spec;

    /**
     * Optional factory for a custom-configured policy (ablations,
     * pretrained Q-tables, tuned thresholds). Called on the worker
     * thread; must return a fresh instance per call and capture only
     * immutable state.
     */
    std::function<std::unique_ptr<policies::Policy>()> make_policy;

    /**
     * Fully custom runner (custom machines, mixed generators, MLC
     * probes). Overrides spec/make_policy when set; the same isolation
     * rule applies: build everything locally, share nothing mutable.
     */
    std::function<sim::RunResult()> run;
};

/** A declarative batch of independent jobs, executed in spec order. */
struct SweepSpec {
    std::vector<SweepJob> jobs;

    /** Append @p job; returns its index (== result vector index). */
    std::size_t add(SweepJob job)
    {
        jobs.push_back(std::move(job));
        return jobs.size() - 1;
    }

    /** Append a default-runner job. */
    std::size_t add(sim::RunSpec spec, std::vector<std::string> labels = {})
    {
        SweepJob job;
        job.labels = std::move(labels);
        job.spec = std::move(spec);
        return add(std::move(job));
    }

    /** Append a job with a custom policy factory. */
    std::size_t
    add_with_policy(sim::RunSpec spec, std::vector<std::string> labels,
                    std::function<std::unique_ptr<policies::Policy>()> make)
    {
        SweepJob job;
        job.labels = std::move(labels);
        job.spec = std::move(spec);
        job.make_policy = std::move(make);
        return add(std::move(job));
    }

    /** Append a fully custom job (its own machine/generator/probe). */
    std::size_t add_run(std::vector<std::string> labels,
                        std::function<sim::RunResult()> run)
    {
        SweepJob job;
        job.labels = std::move(labels);
        job.run = std::move(run);
        return add(std::move(job));
    }

    /**
     * The classic workload x policy x ratio grid, flattened in that
     * nesting order with labels {workload, policy, ratio}. Every job
     * copies @p prototype (accesses, seed, engine config) before the
     * three key fields are overwritten.
     */
    static SweepSpec grid(const std::vector<std::string>& workloads,
                          const std::vector<std::string>& policies,
                          const std::vector<sim::RatioSpec>& ratios,
                          const sim::RunSpec& prototype);

    /**
     * Reseed every job with derive_seed(base_seed, SeedDomain::kJob,
     * index): independent per-job streams that depend only on the
     * job's position in the spec. The kJob domain is the legacy
     * two-argument stream, so existing goldens are unchanged; in-run
     * shard lanes derive from the disjoint kShard domain, so job i and
     * shard i of any job can never share a stream (util/rng.hpp). Off
     * by default — the paper convention runs every cell at one shared
     * seed — and therefore opt-in (artmem sweep --derive-seeds).
     */
    void derive_seeds(std::uint64_t base_seed);
};

/** Execution knobs for SweepRunner. */
struct SweepOptions {
    /** Worker threads; 0 means one per hardware thread. */
    unsigned jobs = 0;
    /**
     * Report "k/N jobs done" + ETA on stderr while running. Only
     * emitted when stderr is a terminal, so piped/CI output is
     * unaffected either way.
     */
    bool progress = true;
};

/**
 * Executes SweepSpecs (and arbitrary indexed job sets) on a bounded
 * worker pool, collecting results in deterministic job order.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions options = {});

    /**
     * Run every job of @p spec; result i corresponds to spec.jobs[i]
     * regardless of completion order. The first exception a job throws
     * is rethrown here after the remaining jobs finish.
     */
    std::vector<sim::RunResult> run(const SweepSpec& spec);

    /**
     * Generic escape hatch for sweeps whose per-job product is not a
     * RunResult (heatmaps, MLC probes): apply @p fn to every index in
     * [0, n) on the pool and collect the returns by index. T must be
     * default-constructible; @p fn must follow the same isolation rule
     * as SweepJob::run.
     */
    template <typename T>
    std::vector<T> map(std::size_t n,
                       const std::function<T(std::size_t)>& fn)
    {
        std::vector<T> results(n);
        run_indexed(n, [&](std::size_t i) { results[i] = fn(i); });
        return results;
    }

  private:
    /** Shared driver: pool dispatch, progress, exception propagation. */
    void run_indexed(std::size_t n,
                     const std::function<void(std::size_t)>& fn);

    SweepOptions options_;
};

/** Run one SweepJob in isolation (the default runner logic). */
sim::RunResult run_job(const SweepJob& job);

}  // namespace artmem::sweep

#endif  // ARTMEM_SWEEP_SWEEP_HPP
