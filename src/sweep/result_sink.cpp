#include "sweep/result_sink.hpp"

#include <cctype>
#include <ostream>

namespace artmem::sweep {

namespace {

/**
 * True when @p text is a plain JSON-compatible number (the output of
 * format_fixed / std::to_string): optional sign, digits, optional
 * fraction, optional exponent. "nan"/"inf" and ratio labels like
 * "1:16" fail and are emitted as quoted strings instead.
 */
bool
is_json_number(const std::string& text)
{
    std::size_t i = 0;
    const auto digits = [&] {
        std::size_t start = i;
        while (i < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[i])))
            ++i;
        return i > start;
    };
    if (i < text.size() && text[i] == '-')
        ++i;
    if (!digits())
        return false;
    if (i < text.size() && text[i] == '.') {
        ++i;
        if (!digits())
            return false;
    }
    if (i < text.size() && (text[i] == 'e' || text[i] == 'E')) {
        ++i;
        if (i < text.size() && (text[i] == '-' || text[i] == '+'))
            ++i;
        if (!digits())
            return false;
    }
    return i == text.size();
}

void
emit_json_string(std::ostream& os, const std::string& text)
{
    os << '"';
    for (char c : text) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        default: os << c; break;
        }
    }
    os << '"';
}

}  // namespace

bool
ResultSink::emit(std::ostream& os, Format format)
{
    switch (format) {
    case Format::kTable:
        table_.print(os);
        break;
    case Format::kCsv:
        table_.print_csv(os);
        break;
    case Format::kJson:
        emit_json(os);
        break;
    }
    // Push the buffered rows to the OS before reporting success: a
    // full disk or closed pipe only surfaces at flush time, and a
    // sink that never flushed would report good() on lost output.
    os.flush();
    return os.good();
}

void
ResultSink::emit_json(std::ostream& os)
{
    table_.flush();
    const auto& headers = table_.headers();
    const auto& rows = table_.rows();
    os << "[\n";
    for (std::size_t r = 0; r < rows.size(); ++r) {
        os << "  {";
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
            emit_json_string(os, headers[c]);
            os << ": ";
            if (is_json_number(rows[r][c]))
                os << rows[r][c];
            else
                emit_json_string(os, rows[r][c]);
            if (c + 1 < rows[r].size())
                os << ", ";
        }
        os << (r + 1 < rows.size() ? "},\n" : "}\n");
    }
    os << "]\n";
}

}  // namespace artmem::sweep
