#include "sweep/sweep.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <mutex>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace artmem::sweep {

SweepSpec
SweepSpec::grid(const std::vector<std::string>& workloads,
                const std::vector<std::string>& policies,
                const std::vector<sim::RatioSpec>& ratios,
                const sim::RunSpec& prototype)
{
    SweepSpec spec;
    spec.jobs.reserve(workloads.size() * policies.size() * ratios.size());
    for (const auto& workload : workloads) {
        for (const auto& policy : policies) {
            for (const auto& ratio : ratios) {
                sim::RunSpec run = prototype;
                run.workload = workload;
                run.policy = policy;
                run.ratio = ratio;
                spec.add(std::move(run),
                         {workload, policy, ratio.label()});
            }
        }
    }
    return spec;
}

void
SweepSpec::derive_seeds(std::uint64_t base_seed)
{
    for (std::size_t i = 0; i < jobs.size(); ++i)
        jobs[i].spec.seed = derive_seed(base_seed, i);
}

sim::RunResult
run_job(const SweepJob& job)
{
    if (job.run)
        return job.run();
    if (job.make_policy) {
        auto policy = job.make_policy();
        return sim::run_experiment(job.spec, *policy);
    }
    return sim::run_experiment(job.spec);
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {}

std::vector<sim::RunResult>
SweepRunner::run(const SweepSpec& spec)
{
    return map<sim::RunResult>(spec.jobs.size(), [&](std::size_t i) {
        return run_job(spec.jobs[i]);
    });
}

void
SweepRunner::run_indexed(std::size_t n,
                         const std::function<void(std::size_t)>& fn)
{
    if (n == 0)
        return;

    // Progress (and its ETA wall-clock) goes to stderr only and never
    // feeds the result vector, so it cannot break bit-identity.
    const bool progress =
        options_.progress && n > 1 && isatty(fileno(stderr)) != 0;
    using Clock = std::chrono::steady_clock;  // lint:allow(chrono) ETA on stderr only
    const auto start = Clock::now();
    std::mutex progress_mutex;
    std::size_t done = 0;

    auto report = [&] {
        if (!progress)
            return;
        std::unique_lock<std::mutex> lock(progress_mutex);
        ++done;
        const double elapsed =
            std::chrono::duration<double>(Clock::now() - start).count();
        const double eta =
            elapsed / static_cast<double>(done) *
            static_cast<double>(n - done);
        std::fprintf(stderr, "\rsweep: %zu/%zu jobs done, eta %.1fs%s",
                     done, n, eta, done == n ? "\n" : "");
        std::fflush(stderr);
    };

    unsigned workers = options_.jobs;
    if (workers == 0)
        workers = std::max(1u, std::thread::hardware_concurrency());
    if (static_cast<std::size_t>(workers) > n)
        workers = static_cast<unsigned>(n);

    if (workers <= 1) {
        // Serial fast path: no pool, exceptions propagate directly.
        for (std::size_t i = 0; i < n; ++i) {
            fn(i);
            report();
        }
        return;
    }

    ThreadPool pool(workers);
    for (std::size_t i = 0; i < n; ++i) {
        pool.submit([&, i] {
            fn(i);
            report();
        });
    }
    pool.wait();
}

}  // namespace artmem::sweep
