#include "sweep/sweep.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>

#include "util/rng.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace artmem::sweep {

namespace {

/**
 * Worker-shared "k/N jobs done" + ETA reporter. Writes to stderr only
 * (and only when stderr is a terminal), so it can never feed the result
 * vector and cannot break bit-identity. The ETA wall clock is likewise
 * reporting-only; everything cross-thread sits behind mutex_ so the
 * Clang capability analysis can vouch for the progress path.
 */
class ProgressMeter
{
  public:
    ProgressMeter(bool enabled, std::size_t total)
        : enabled_(enabled), total_(total),
          start_(Clock::now())
    {
    }

    void
    job_done() ARTMEM_EXCLUDES(mutex_)
    {
        if (!enabled_)
            return;
        MutexLock lock(mutex_);
        ++done_;
        const double elapsed =
            std::chrono::duration<double>(Clock::now() - start_).count();
        const double eta = elapsed / static_cast<double>(done_) *
                           static_cast<double>(total_ - done_);
        std::fprintf(stderr, "\rsweep: %zu/%zu jobs done, eta %.1fs%s",
                     done_, total_, eta, done_ == total_ ? "\n" : "");
        std::fflush(stderr);
    }

  private:
    // lint:allow(DL001) ETA on stderr only; never feeds results
    using Clock = std::chrono::steady_clock;

    const bool enabled_;
    const std::size_t total_;
    const Clock::time_point start_;
    Mutex mutex_;
    std::size_t done_ ARTMEM_GUARDED_BY(mutex_) = 0;
};

}  // namespace

SweepSpec
SweepSpec::grid(const std::vector<std::string>& workloads,
                const std::vector<std::string>& policies,
                const std::vector<sim::RatioSpec>& ratios,
                const sim::RunSpec& prototype)
{
    SweepSpec spec;
    spec.jobs.reserve(workloads.size() * policies.size() * ratios.size());
    for (const auto& workload : workloads) {
        for (const auto& policy : policies) {
            for (const auto& ratio : ratios) {
                sim::RunSpec run = prototype;
                run.workload = workload;
                run.policy = policy;
                run.ratio = ratio;
                spec.add(std::move(run),
                         {workload, policy, ratio.label()});
            }
        }
    }
    return spec;
}

void
SweepSpec::derive_seeds(std::uint64_t base_seed)
{
    for (std::size_t i = 0; i < jobs.size(); ++i)
        jobs[i].spec.seed = derive_seed(base_seed, SeedDomain::kJob, i);
}

sim::RunResult
run_job(const SweepJob& job)
{
    if (job.run)
        return job.run();
    if (job.make_policy) {
        auto policy = job.make_policy();
        return sim::run_experiment(job.spec, *policy);
    }
    return sim::run_experiment(job.spec);
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {}

std::vector<sim::RunResult>
SweepRunner::run(const SweepSpec& spec)
{
    return map<sim::RunResult>(spec.jobs.size(), [&](std::size_t i) {
        return run_job(spec.jobs[i]);
    });
}

void
SweepRunner::run_indexed(std::size_t n,
                         const std::function<void(std::size_t)>& fn)
{
    if (n == 0)
        return;

    ProgressMeter progress(
        options_.progress && n > 1 && isatty(fileno(stderr)) != 0, n);

    unsigned workers = options_.jobs;
    if (workers == 0)
        workers = std::max(1u, std::thread::hardware_concurrency());
    if (static_cast<std::size_t>(workers) > n)
        workers = static_cast<unsigned>(n);

    if (workers <= 1) {
        // Serial fast path: no pool, exceptions propagate directly.
        for (std::size_t i = 0; i < n; ++i) {
            fn(i);
            progress.job_done();
        }
        return;
    }

    ThreadPool pool(workers);
    for (std::size_t i = 0; i < n; ++i) {
        pool.submit([&, i] {
            fn(i);
            progress.job_done();
        });
    }
    pool.wait();
}

}  // namespace artmem::sweep
