/**
 * @file
 * Unified emission path for sweep results: one labelled row store that
 * prints as an aligned table, CSV, or JSON. Replaces the per-bench
 * ad-hoc Table/CSV plumbing so every harness shares one output
 * contract (and golden diffs compare a single format).
 *
 * Thread contract: a ResultSink is confined to the harness thread.
 * Sweep workers never touch it — they return RunResults, and the
 * harness folds them into rows strictly in job-index order after
 * SweepRunner::wait(), which is what keeps --jobs N output
 * byte-identical to --jobs 1 (DESIGN.md §11).
 */
#ifndef ARTMEM_SWEEP_RESULT_SINK_HPP
#define ARTMEM_SWEEP_RESULT_SINK_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace artmem::sweep {

/** Output format selected by the harness flags (--csv / --json). */
enum class Format { kTable, kCsv, kJson };

/**
 * Collects labelled result rows and emits them in the chosen format.
 *
 * The row-building API mirrors util/Table (row()/cell() chaining) so
 * the bench harnesses keep their assembly shape; table and CSV output
 * are byte-identical to what Table printed before the sweep refactor.
 */
class ResultSink
{
  public:
    /** Create a sink with the given column headers (label keys). */
    explicit ResultSink(std::vector<std::string> headers)
        : table_(std::move(headers))
    {
    }

    /** Append a fully formed row; must match the header width. */
    void add_row(std::vector<std::string> cells)
    {
        table_.add_row(std::move(cells));
    }

    /** Begin building a row cell-by-cell. */
    ResultSink& row()
    {
        table_.row();
        return *this;
    }

    /** Append a string cell to the row under construction. */
    ResultSink& cell(std::string value)
    {
        table_.cell(std::move(value));
        return *this;
    }

    /** Append a numeric cell with fixed precision. */
    ResultSink& cell(double value, int precision = 3)
    {
        table_.cell(value, precision);
        return *this;
    }

    /** Append an integer cell. */
    ResultSink& cell(std::uint64_t value)
    {
        table_.cell(value);
        return *this;
    }

    /** Number of data rows. */
    std::size_t row_count() const { return table_.row_count(); }

    /**
     * Print in @p format (table/CSV via Table; JSON row objects).
     * @returns the stream's health after writing AND flushing
     * (os.good()): a closed pipe or full disk only surfaces once the
     * buffer reaches the OS, and neither must pass silently as a
     * result file, so emit flushes and callers consume the status.
     */
    [[nodiscard]] bool emit(std::ostream& os, Format format);

  private:
    void emit_json(std::ostream& os);

    Table table_;
};

}  // namespace artmem::sweep

#endif  // ARTMEM_SWEEP_RESULT_SINK_HPP
