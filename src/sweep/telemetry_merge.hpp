/**
 * @file
 * Deterministic aggregation of per-job telemetry across a sweep.
 *
 * Each sweep job is single-threaded and owns one telemetry::Telemetry
 * bundle (carried back in sim::RunResult::telemetry). These helpers
 * fold the per-job shards into one artifact strictly in job-index
 * order, so the merged output is bit-identical between --jobs 1 and
 * --jobs N — the same contract the result tables already honour.
 */
#ifndef ARTMEM_SWEEP_TELEMETRY_MERGE_HPP
#define ARTMEM_SWEEP_TELEMETRY_MERGE_HPP

#include <iosfwd>
#include <vector>

#include "sim/engine.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/phase_timer.hpp"

namespace artmem::sweep {

/**
 * Merge every job's metrics registry (jobs without telemetry are
 * skipped) in job order: counters add, gauge statistics pool, and
 * histogram buckets add bucket-wise. Metric names first seen in a
 * later job append after all earlier ones.
 */
telemetry::MetricsRegistry
merge_job_metrics(const std::vector<sim::RunResult>& results);

/** Sum every job's phase profile (wall clock; reporting only). */
telemetry::PhaseProfiler
merge_job_profiles(const std::vector<sim::RunResult>& results);

/**
 * Write all jobs' trace events as JSON Lines, one job after another in
 * job order, each line tagged with its `"job"` index.
 */
void write_merged_jsonl(std::ostream& os,
                        const std::vector<sim::RunResult>& results);

/**
 * Write all jobs' trace events as one Chrome trace-event JSON object;
 * each job becomes a process (pid = job index) so Perfetto shows the
 * sweep as parallel tracks.
 */
void write_merged_chrome(std::ostream& os,
                         const std::vector<sim::RunResult>& results);

}  // namespace artmem::sweep

#endif  // ARTMEM_SWEEP_TELEMETRY_MERGE_HPP
